//! Bayesian optimization with a Gaussian-process surrogate.
//!
//! Used in two places, exactly as in the paper:
//!
//! * [`BoSearcher`] — BO over the (normalized) hardware grid, the "+ BO"
//!   half of the VAESA baseline \[11\];
//! * [`BoMinimizer`] — BO over an arbitrary continuous box, reused for
//!   the latent-space convergence comparison of Fig. 8a (contrastive
//!   embedding vs. VAE latent).

use ai2_tensor::{linalg, rng, Tensor};
use ai2_workloads::generator::DseInput;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::EvalEngine;
use crate::search::{SearchContext, SearchResult, Searcher};
use crate::space::DesignPoint;

/// A Gaussian process with an RBF kernel over points in `[0, 1]^d`.
#[derive(Debug)]
pub struct Gp {
    xs: Vec<Vec<f64>>,
    lengthscale: f64,
    noise: f64,
    y_mean: f64,
    y_std: f64,
    chol: Tensor,
    alpha: Vec<f32>,
}

impl Gp {
    /// Fits a GP to observations (normalising `y` internally).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths differ from `ys`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lengthscale: f64, noise: f64) -> Gp {
        assert!(!xs.is_empty(), "Gp::fit: no observations");
        assert_eq!(xs.len(), ys.len(), "Gp::fit: xs/ys length mismatch");
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-9);
        let ys_n: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let mut k = Tensor::zeros(&[n, n]);
        for i in 0..n {
            for j in 0..n {
                k[(i, j)] = rbf(&xs[i], &xs[j], lengthscale) as f32;
            }
            k[(i, i)] += noise as f32;
        }
        let chol = linalg::cholesky(&k).unwrap_or_else(|_| {
            // jitter retry for near-singular kernels
            let mut kj = k.clone();
            for i in 0..n {
                kj[(i, i)] += 1e-3;
            }
            linalg::cholesky(&kj).expect("kernel not PD even with jitter")
        });
        let y_t = Tensor::from_vec(ys_n.iter().map(|&v| v as f32).collect(), &[n])
            .expect("length matches");
        let alpha = linalg::cholesky_solve(&chol, &y_t).into_vec();
        Gp {
            xs: xs.to_vec(),
            lengthscale,
            noise,
            y_mean,
            y_std,
            chol,
            alpha,
        }
    }

    /// Posterior mean and variance at `x` (in original `y` units).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let n = self.xs.len();
        let kx: Vec<f32> = self
            .xs
            .iter()
            .map(|xi| rbf(xi, x, self.lengthscale) as f32)
            .collect();
        let mean_n: f64 = kx
            .iter()
            .zip(&self.alpha)
            .map(|(&k, &a)| (k * a) as f64)
            .sum();
        // var = k(x,x) + noise − kₓᵀ K⁻¹ kₓ via the Cholesky solve
        let kx_t = Tensor::from_vec(kx.clone(), &[n]).expect("length matches");
        let v = linalg::cholesky_solve(&self.chol, &kx_t);
        let reduction: f64 = kx
            .iter()
            .zip(v.as_slice())
            .map(|(&k, &vv)| (k * vv) as f64)
            .sum();
        let var_n = (1.0 + self.noise - reduction).max(1e-12);
        (
            mean_n * self.y_std + self.y_mean,
            var_n * self.y_std * self.y_std,
        )
    }
}

fn rbf(a: &[f64], b: &[f64], lengthscale: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (-d2 / (2.0 * lengthscale * lengthscale)).exp()
}

/// Expected improvement (for minimisation) of a Gaussian posterior over
/// the incumbent `best`.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sigma;
    (best - mean) * phi(z) + sigma * pdf(z)
}

fn pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via Abramowitz–Stegun 7.1.26 (≈1e-7 accurate).
fn phi(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let tail = pdf(z) * poly;
    if z >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// One step of a generic BO run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoTrace {
    /// Points queried, in order.
    pub xs: Vec<Vec<f64>>,
    /// Objective values, in order.
    pub ys: Vec<f64>,
    /// Best-so-far after each query (the Fig. 8a series).
    pub best_trace: Vec<f64>,
}

impl BoTrace {
    /// The best `(x, y)` found.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn best(&self) -> (&[f64], f64) {
        let mut bi = 0;
        for (i, &y) in self.ys.iter().enumerate() {
            if y < self.ys[bi] {
                bi = i;
            }
        }
        (&self.xs[bi], self.ys[bi])
    }
}

/// Bayesian optimization over a continuous box `[lo, hi]^d`.
#[derive(Debug, Clone)]
pub struct BoMinimizer {
    bounds: Vec<(f64, f64)>,
    n_init: usize,
    n_candidates: usize,
    lengthscale: f64,
    noise: f64,
    seed: u64,
}

impl BoMinimizer {
    /// BO over the given box with sensible defaults (8 random warm-up
    /// points, 256 EI candidates per step, lengthscale 0.2).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or any interval is inverted.
    pub fn new(bounds: Vec<(f64, f64)>, seed: u64) -> Self {
        assert!(!bounds.is_empty(), "BoMinimizer: empty bounds");
        assert!(
            bounds.iter().all(|(lo, hi)| lo < hi),
            "BoMinimizer: inverted interval"
        );
        BoMinimizer {
            bounds,
            n_init: 8,
            n_candidates: 256,
            lengthscale: 0.2,
            noise: 1e-4,
            seed,
        }
    }

    /// Overrides the number of random warm-up evaluations.
    pub fn with_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(2);
        self
    }

    fn random_point(&self, r: &mut StdRng) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| r.random_range(lo..hi))
            .collect()
    }

    fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.bounds)
            .map(|(&v, &(lo, hi))| (v - lo) / (hi - lo))
            .collect()
    }

    /// Minimises `f` with `n_evals` total queries.
    ///
    /// # Panics
    ///
    /// Panics if `n_evals == 0`.
    pub fn minimize(&self, mut f: impl FnMut(&[f64]) -> f64, n_evals: usize) -> BoTrace {
        assert!(n_evals > 0, "BoMinimizer: zero evaluation budget");
        let mut r = rng::seeded(self.seed);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut best_trace = Vec::new();
        let mut best = f64::INFINITY;

        for i in 0..n_evals {
            let x = if i < self.n_init.min(n_evals) {
                self.random_point(&mut r)
            } else {
                // fit the GP in unit coordinates and maximise EI over
                // random candidates
                let xs_u: Vec<Vec<f64>> = xs.iter().map(|x| self.to_unit(x)).collect();
                let gp = Gp::fit(&xs_u, &ys, self.lengthscale, self.noise);
                let mut best_cand = self.random_point(&mut r);
                let mut best_ei = f64::NEG_INFINITY;
                for _ in 0..self.n_candidates {
                    let cand = self.random_point(&mut r);
                    let (m, v) = gp.predict(&self.to_unit(&cand));
                    let ei = expected_improvement(m, v, best);
                    if ei > best_ei {
                        best_ei = ei;
                        best_cand = cand;
                    }
                }
                best_cand
            };
            let y = f(&x);
            best = best.min(y);
            xs.push(x);
            ys.push(y);
            best_trace.push(best);
        }
        BoTrace { xs, ys, best_trace }
    }
}

/// BO over the hardware grid: the continuous box `[0,1]²` mapped onto
/// `(pe_idx, buf_idx)`.
#[derive(Debug, Clone)]
pub struct BoSearcher {
    seed: u64,
}

impl BoSearcher {
    /// Creates a seeded grid-BO searcher.
    pub fn new(seed: u64) -> Self {
        BoSearcher { seed }
    }
}

impl Searcher for BoSearcher {
    fn search(
        &mut self,
        engine: &EvalEngine,
        input: DseInput,
        budget_evals: usize,
    ) -> SearchResult {
        let mut ctx = SearchContext::new(engine, input);
        if budget_evals == 0 {
            return SearchResult::from_context(ctx);
        }
        let space = engine.space();
        let npe = space.num_pe_choices() as f64;
        let nbuf = space.num_buf_choices() as f64;
        let minimizer = BoMinimizer::new(vec![(0.0, 1.0), (0.0, 1.0)], self.seed);
        // log-compress scores so the GP is not dominated by the worst configs
        minimizer.minimize(
            |x| {
                let p = DesignPoint {
                    pe_idx: ((x[0] * npe) as usize).min(space.num_pe_choices() - 1),
                    buf_idx: ((x[1] * nbuf) as usize).min(space.num_buf_choices() - 1),
                };
                ctx.evaluate(p).max(1.0).ln()
            },
            budget_evals,
        );
        SearchResult::from_context(ctx)
    }

    fn name(&self) -> &'static str {
        "bayesian-opt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests::{assert_searcher_close_to_oracle, test_input};
    use crate::search::RandomSearcher;

    #[test]
    fn gp_interpolates_observations() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![1.0, -1.0, 2.0];
        let gp = Gp::fit(&xs, &ys, 0.3, 1e-6);
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs {y}");
            assert!(v >= 0.0);
        }
        // uncertainty grows away from data
        let (_, v_far) = gp.predict(&[3.0]);
        let (_, v_near) = gp.predict(&[0.5]);
        assert!(v_far > v_near);
    }

    #[test]
    fn ei_prefers_uncertain_low_mean() {
        let best = 1.0;
        let certain_bad = expected_improvement(2.0, 1e-9, best);
        let uncertain = expected_improvement(1.2, 1.0, best);
        let certain_good = expected_improvement(0.0, 1e-9, best);
        assert!(certain_bad < uncertain);
        assert!(certain_good > 0.9);
    }

    #[test]
    fn phi_matches_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn bo_minimizer_finds_quadratic_minimum() {
        let bo = BoMinimizer::new(vec![(-2.0, 2.0), (-2.0, 2.0)], 5);
        let trace = bo.minimize(|x| (x[0] - 0.7).powi(2) + (x[1] + 0.3).powi(2), 40);
        let (xbest, ybest) = trace.best();
        assert!(ybest < 0.05, "best {ybest} at {xbest:?}");
        // trace is monotone non-increasing
        for w in trace.best_trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn bo_searcher_close_to_oracle() {
        assert_searcher_close_to_oracle(&mut BoSearcher::new(13), 150, 1.30);
    }

    #[test]
    fn bo_beats_random_at_small_budget() {
        let engine = EvalEngine::table_i_default();
        let input = test_input();
        let budget = 50;
        let avg = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let bo = avg((0..4)
            .map(|s| BoSearcher::new(s).search(&engine, input, budget).best_score)
            .collect());
        let rnd = avg((0..4)
            .map(|s| {
                RandomSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        assert!(bo <= rnd * 1.30, "BO ({bo}) much worse than random ({rnd})");
    }
}
