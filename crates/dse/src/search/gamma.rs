//! GAMMA-style genetic algorithm (Kao & Krishna, ICCAD 2020).

use ai2_tensor::rng;
use ai2_workloads::generator::DseInput;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::EvalEngine;
use crate::search::{SearchContext, SearchResult, Searcher};
use crate::space::DesignPoint;

/// Genetic algorithm over `(pe_idx, buf_idx)` genomes: tournament
/// selection, uniform crossover, ±step mutation, elitism.
#[derive(Debug, Clone)]
pub struct GammaSearcher {
    seed: u64,
    population: usize,
    mutation_rate: f64,
    elite: usize,
    /// Warm start: the first population member, instead of random.
    start: Option<DesignPoint>,
}

impl GammaSearcher {
    /// GA with the defaults used in the experiments (population 20,
    /// mutation 0.25, elite 2).
    pub fn new(seed: u64) -> Self {
        GammaSearcher {
            seed,
            population: 20,
            mutation_rate: 0.25,
            elite: 2,
            start: None,
        }
    }

    /// Overrides the population size.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2`.
    pub fn with_population(mut self, population: usize) -> Self {
        assert!(population >= 2, "GammaSearcher: population must be ≥ 2");
        self.population = population;
        self
    }

    /// Seeds the initial population with `p` (a pipeline's incoming best
    /// candidate) as its first member; the rest stay random. The seed is
    /// evaluated like any member, so a warm-started run can never report
    /// worse than its seed. Without a start point the GA behaves exactly
    /// as before.
    pub fn with_start(mut self, p: DesignPoint) -> Self {
        self.start = Some(p);
        self
    }

    fn mutate(&self, r: &mut StdRng, engine: &EvalEngine, p: DesignPoint) -> DesignPoint {
        let mut pe = p.pe_idx as isize;
        let mut buf = p.buf_idx as isize;
        if r.random_range(0.0..1.0) < self.mutation_rate {
            pe += r.random_range(-6i64..=6) as isize;
        }
        if r.random_range(0.0..1.0) < self.mutation_rate {
            buf += r.random_range(-2i64..=2) as isize;
        }
        engine.space().clamp(pe, buf)
    }
}

impl GammaSearcher {
    /// The GA loop over a caller-built context — the pipeline entry
    /// point, where the context carries a per-request goal
    /// ([`SearchContext::with_goal`]) rather than the engine task's.
    pub fn search_in(&self, ctx: &mut SearchContext<'_>, budget_evals: usize) {
        let mut r = rng::seeded(self.seed);
        let engine = ctx.engine();
        let space = engine.space();
        let pop_size = self.population.min(budget_evals.max(2));

        // initial population (the warm start, when present, claims slot 0)
        let mut pop: Vec<(DesignPoint, f64)> = (0..pop_size)
            .map(|i| {
                let p = match (i, self.start) {
                    (0, Some(p)) => p,
                    _ => DesignPoint {
                        pe_idx: r.random_range(0..space.num_pe_choices()),
                        buf_idx: r.random_range(0..space.num_buf_choices()),
                    },
                };
                let s = ctx.evaluate(p);
                (p, s)
            })
            .collect();

        while ctx.num_evals() < budget_evals {
            // rank ascending by score
            pop.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
            let mut next: Vec<(DesignPoint, f64)> = pop[..self.elite.min(pop.len())].to_vec();
            while next.len() < pop_size && ctx.num_evals() < budget_evals {
                // tournament selection of two parents
                let pick = |r: &mut StdRng| {
                    let a = r.random_range(0..pop.len());
                    let b = r.random_range(0..pop.len());
                    if pop[a].1 <= pop[b].1 {
                        pop[a].0
                    } else {
                        pop[b].0
                    }
                };
                let pa = pick(&mut r);
                let pb = pick(&mut r);
                // uniform crossover of the two genes
                let child = DesignPoint {
                    pe_idx: if r.random_range(0.0..1.0) < 0.5 {
                        pa.pe_idx
                    } else {
                        pb.pe_idx
                    },
                    buf_idx: if r.random_range(0.0..1.0) < 0.5 {
                        pa.buf_idx
                    } else {
                        pb.buf_idx
                    },
                };
                let child = self.mutate(&mut r, engine, child);
                let s = ctx.evaluate(child);
                next.push((child, s));
            }
            pop = next;
        }
    }
}

impl Searcher for GammaSearcher {
    fn search(
        &mut self,
        engine: &EvalEngine,
        input: DseInput,
        budget_evals: usize,
    ) -> SearchResult {
        let mut ctx = SearchContext::new(engine, input);
        self.search_in(&mut ctx, budget_evals);
        SearchResult::from_context(ctx)
    }

    fn name(&self) -> &'static str {
        "gamma-ga"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests::{assert_searcher_close_to_oracle, test_input};
    use crate::search::RandomSearcher;

    #[test]
    fn ga_close_to_oracle() {
        assert_searcher_close_to_oracle(&mut GammaSearcher::new(7), 250, 1.30);
    }

    #[test]
    fn ga_beats_random_at_tight_budget() {
        let engine = EvalEngine::table_i_default();
        let input = test_input();
        let budget = 80;
        let avg = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let ga = avg((0..5)
            .map(|s| {
                GammaSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        let rnd = avg((0..5)
            .map(|s| {
                RandomSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        assert!(
            ga <= rnd * 1.25,
            "GA ({ga}) should match or beat random ({rnd})"
        );
    }

    #[test]
    fn ga_respects_budget() {
        let engine = EvalEngine::table_i_default();
        let res = GammaSearcher::new(1).search(&engine, test_input(), 37);
        assert!(res.num_evals <= 37 + 1);
    }
}
