//! ConfuciuX-style searcher: REINFORCE for coarse-grained resource
//! assignment, then a genetic fine-tuning stage (Kao et al., MICRO 2020).
//!
//! This is the method the paper used to label its dataset; here the exact
//! oracle labels the dataset instead, and this searcher exists for the
//! search-vs-learning comparisons. Its structure follows the original:
//! an RL agent proposes coarse resource bins, and a local GA refines the
//! best bin found.

use ai2_tensor::rng;
use ai2_workloads::generator::DseInput;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::EvalEngine;
use crate::search::{SearchContext, SearchResult, Searcher};
use crate::space::DesignPoint;

/// REINFORCE + GA fine-tune.
#[derive(Debug, Clone)]
pub struct ConfuciuxSearcher {
    seed: u64,
    pe_bins: usize,
    buf_bins: usize,
    lr: f64,
    /// Fraction of the budget spent in the RL stage (the rest fine-tunes).
    rl_fraction: f64,
}

impl ConfuciuxSearcher {
    /// Defaults: 8 × 6 coarse bins, lr 0.2, 60 % RL / 40 % GA.
    pub fn new(seed: u64) -> Self {
        ConfuciuxSearcher {
            seed,
            pe_bins: 8,
            buf_bins: 6,
            lr: 0.2,
            rl_fraction: 0.6,
        }
    }

    fn softmax(logits: &[f64]) -> Vec<f64> {
        let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let e: Vec<f64> = logits.iter().map(|l| (l - m).exp()).collect();
        let z: f64 = e.iter().sum();
        e.into_iter().map(|x| x / z).collect()
    }

    fn sample_cat(r: &mut StdRng, probs: &[f64]) -> usize {
        let u: f64 = r.random_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }
}

impl Searcher for ConfuciuxSearcher {
    fn search(
        &mut self,
        engine: &EvalEngine,
        input: DseInput,
        budget_evals: usize,
    ) -> SearchResult {
        let mut r = rng::seeded(self.seed);
        let mut ctx = SearchContext::new(engine, input);
        let space = engine.space();
        let npe = space.num_pe_choices();
        let nbuf = space.num_buf_choices();
        let pe_bin_w = npe.div_ceil(self.pe_bins);
        let buf_bin_w = nbuf.div_ceil(self.buf_bins);

        // --- stage 1: REINFORCE over coarse bins
        let mut theta_pe = vec![0.0f64; self.pe_bins];
        let mut theta_buf = vec![0.0f64; self.buf_bins];
        let rl_budget = ((budget_evals as f64) * self.rl_fraction) as usize;
        let mut baseline = 0.0f64;
        let mut episodes = 0usize;
        let mut best_bins = (0usize, 0usize);
        let mut best_bin_score = f64::INFINITY;
        while ctx.num_evals() < rl_budget {
            let ppe = Self::softmax(&theta_pe);
            let pbuf = Self::softmax(&theta_buf);
            let a_pe = Self::sample_cat(&mut r, &ppe);
            let a_buf = Self::sample_cat(&mut r, &pbuf);
            // evaluate a random point inside the chosen bins
            let pe_idx = (a_pe * pe_bin_w + r.random_range(0..pe_bin_w)).min(npe - 1);
            let buf_idx = (a_buf * buf_bin_w + r.random_range(0..buf_bin_w)).min(nbuf - 1);
            let score = ctx.evaluate(DesignPoint { pe_idx, buf_idx });
            if score < best_bin_score {
                best_bin_score = score;
                best_bins = (a_pe, a_buf);
            }
            // reward: negative log-score (scale-free across workloads)
            let reward = -score.max(1.0).ln();
            episodes += 1;
            baseline += (reward - baseline) / episodes as f64;
            let adv = reward - baseline;
            for (i, t) in theta_pe.iter_mut().enumerate() {
                let grad = if i == a_pe { 1.0 - ppe[i] } else { -ppe[i] };
                *t += self.lr * adv * grad;
            }
            for (i, t) in theta_buf.iter_mut().enumerate() {
                let grad = if i == a_buf { 1.0 - pbuf[i] } else { -pbuf[i] };
                *t += self.lr * adv * grad;
            }
        }

        // --- stage 2: GA fine-tune inside (and around) the best bin
        let (bin_pe, bin_buf) = best_bins;
        let center = DesignPoint {
            pe_idx: (bin_pe * pe_bin_w + pe_bin_w / 2).min(npe - 1),
            buf_idx: (bin_buf * buf_bin_w + buf_bin_w / 2).min(nbuf - 1),
        };
        let mut pop: Vec<(DesignPoint, f64)> = Vec::new();
        let pop_size = 8usize;
        for _ in 0..pop_size {
            if ctx.num_evals() >= budget_evals {
                break;
            }
            let p = space.clamp(
                center.pe_idx as isize
                    + r.random_range(-(pe_bin_w as i64)..=pe_bin_w as i64) as isize,
                center.buf_idx as isize
                    + r.random_range(-(buf_bin_w as i64)..=buf_bin_w as i64) as isize,
            );
            let s = ctx.evaluate(p);
            pop.push((p, s));
        }
        while ctx.num_evals() < budget_evals && !pop.is_empty() {
            pop.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
            pop.truncate(pop_size / 2);
            let parents = pop.clone();
            for (p, _) in parents {
                if ctx.num_evals() >= budget_evals {
                    break;
                }
                let child = space.clamp(
                    p.pe_idx as isize + r.random_range(-3i64..=3) as isize,
                    p.buf_idx as isize + r.random_range(-1i64..=1) as isize,
                );
                let s = ctx.evaluate(child);
                pop.push((child, s));
            }
        }
        SearchResult::from_context(ctx)
    }

    fn name(&self) -> &'static str {
        "confuciux"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests::{assert_searcher_close_to_oracle, test_input};
    use crate::search::RandomSearcher;

    #[test]
    fn confuciux_close_to_oracle() {
        assert_searcher_close_to_oracle(&mut ConfuciuxSearcher::new(11), 250, 1.30);
    }

    #[test]
    fn confuciux_competitive_with_random() {
        let engine = EvalEngine::table_i_default();
        let input = test_input();
        let budget = 100;
        let avg = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let cx = avg((0..5)
            .map(|s| {
                ConfuciuxSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        let rnd = avg((0..5)
            .map(|s| {
                RandomSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        assert!(
            cx <= rnd * 1.25,
            "ConfuciuX ({cx}) far worse than random ({rnd})"
        );
    }

    #[test]
    fn confuciux_is_deterministic_per_seed() {
        let engine = EvalEngine::table_i_default();
        let a = ConfuciuxSearcher::new(3).search(&engine, test_input(), 60);
        let b = ConfuciuxSearcher::new(3).search(&engine, test_input(), 60);
        assert_eq!(a.best_point, b.best_point);
    }
}
