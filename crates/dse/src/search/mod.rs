//! Search-based DSE baselines.
//!
//! These are the iterative techniques of the paper's Fig. 1 ("search-based
//! DSE methods") and §V, reproduced so that the one-shot learned methods
//! can be compared against them for both quality and query cost:
//!
//! * [`RandomSearcher`] — uniform sampling, the canonical lower bound.
//! * [`AnnealingSearcher`] — simulated annealing over the grid.
//! * [`GammaSearcher`] — a GAMMA-style genetic algorithm \[13\].
//! * [`ConfuciuxSearcher`] — REINFORCE for coarse-grained search followed
//!   by GA fine-tuning, after ConfuciuX \[12\].
//! * [`bo`] — Bayesian optimization with a Gaussian-process surrogate and
//!   expected improvement, usable over the hardware grid or any
//!   continuous latent space (the paper's Fig. 8a and VAESA \[11\]).
//!
//! All searchers operate through [`SearchContext`], which counts oracle
//! queries and records the best-so-far trace used by the convergence
//! figures. Every cost query flows through the shared
//! [`EvalEngine`](crate::engine::EvalEngine), so identical
//! `(input, point)` pairs — which population methods revisit constantly —
//! are scored once and answered from cache thereafter.

mod annealing;
pub mod bo;
mod confuciux;
mod gamma;
mod random;

pub use annealing::AnnealingSearcher;
pub use confuciux::ConfuciuxSearcher;
pub use gamma::GammaSearcher;
pub use random::RandomSearcher;

use ai2_workloads::generator::DseInput;

use crate::engine::EvalEngine;
use crate::objective::{Budget, Objective};
use crate::space::DesignPoint;

/// Evaluation bookkeeping shared by every searcher: scores design points
/// through the shared engine, counts queries, tracks the best-so-far
/// trajectory.
#[derive(Debug)]
pub struct SearchContext<'e> {
    engine: &'e EvalEngine,
    input: DseInput,
    /// Objective/budget override for searches ran on behalf of a serving
    /// query rather than the engine's own task (`None` = task goal,
    /// scored through the grid-materialising [`EvalEngine::score`] path
    /// exactly as before the override existed).
    goal: Option<(Objective, Budget)>,
    evals: usize,
    best: Option<(f64, DesignPoint)>,
    trace: Vec<f64>,
}

impl<'e> SearchContext<'e> {
    /// Starts a fresh context for one workload.
    pub fn new(engine: &'e EvalEngine, input: DseInput) -> Self {
        SearchContext {
            engine,
            input,
            goal: None,
            evals: 0,
            best: None,
            trace: Vec::new(),
        }
    }

    /// A context scoring under an arbitrary objective and budget instead
    /// of the engine task's own — the pipeline refinement path, where a
    /// per-request goal searches through an engine whose task may want
    /// something else. Scoring goes through the transient
    /// [`EvalEngine::score_with`] path, so one-shot serving queries never
    /// pin grid-cache capacity.
    pub fn with_goal(
        engine: &'e EvalEngine,
        input: DseInput,
        objective: Objective,
        budget: Budget,
    ) -> Self {
        SearchContext {
            goal: Some((objective, budget)),
            ..SearchContext::new(engine, input)
        }
    }

    /// The evaluation substrate under search (borrowing the engine, not
    /// the context, so searchers can hold it across `evaluate` calls).
    pub fn engine(&self) -> &'e EvalEngine {
        self.engine
    }

    /// The workload under search.
    pub fn input(&self) -> DseInput {
        self.input
    }

    /// Scores a point (infeasible points get a large penalty), updating
    /// the query count and the best-so-far trace.
    pub fn evaluate(&mut self, p: DesignPoint) -> f64 {
        self.evals += 1;
        let score = match self.goal {
            None => match self.engine.score(&self.input, p) {
                Some(s) => s,
                // soft penalty keeps population methods moving instead of
                // stalling on the feasibility boundary
                None => self.engine.score_unchecked(&self.input, p) * 10.0,
            },
            Some((objective, budget)) => {
                match self.engine.score_with(&self.input, p, objective, budget) {
                    Some(s) => s,
                    None => self.engine.score_unchecked_with(&self.input, p, objective) * 10.0,
                }
            }
        };
        let feasible = match self.goal {
            None => self.engine.is_feasible(p),
            Some((_, budget)) => self.engine.is_feasible_under(p, budget),
        };
        if feasible {
            match self.best {
                Some((b, _)) if b <= score => {}
                _ => self.best = Some((score, p)),
            }
        }
        self.trace.push(self.best.map_or(f64::INFINITY, |(b, _)| b));
        score
    }

    /// Number of oracle queries so far.
    pub fn num_evals(&self) -> usize {
        self.evals
    }

    /// Best feasible `(score, point)` found, if any.
    pub fn best(&self) -> Option<(f64, DesignPoint)> {
        self.best
    }

    /// Best-so-far score after each query (∞ before the first feasible
    /// hit) — the convergence curves of Fig. 8a.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best feasible point found (the task guarantees one exists; a
    /// searcher that never sampled a feasible point returns the smallest
    /// configuration).
    pub best_point: DesignPoint,
    /// Score of `best_point`.
    pub best_score: f64,
    /// Oracle queries consumed.
    pub num_evals: usize,
    /// Best-so-far score after each query.
    pub trace: Vec<f64>,
}

impl SearchResult {
    fn from_context(ctx: SearchContext<'_>) -> SearchResult {
        let (best_score, best_point) = ctx.best.unwrap_or_else(|| {
            // pathological budget: fall back to the smallest config,
            // which DseTask guarantees feasible
            let p = DesignPoint {
                pe_idx: 0,
                buf_idx: 0,
            };
            let score = match ctx.goal {
                None => ctx.engine.score(&ctx.input, p),
                Some((objective, budget)) => {
                    ctx.engine.score_with(&ctx.input, p, objective, budget)
                }
            };
            (score.unwrap_or(f64::INFINITY), p)
        });
        SearchResult {
            best_point,
            best_score,
            num_evals: ctx.evals,
            trace: ctx.trace,
        }
    }
}

/// A search-based DSE method: spends up to `budget_evals` cost-model
/// queries to find a good design point for one workload. All queries go
/// through the shared [`EvalEngine`].
pub trait Searcher {
    /// Runs the search.
    fn search(&mut self, engine: &EvalEngine, input: DseInput, budget_evals: usize)
        -> SearchResult;

    /// Short name for tables and logs.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::{Dataflow, GemmWorkload};

    pub(crate) fn test_input() -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(48, 400, 300),
            dataflow: Dataflow::OutputStationary,
        }
    }

    #[test]
    fn context_counts_and_traces() {
        let engine = EvalEngine::table_i_default();
        let mut ctx = SearchContext::new(&engine, test_input());
        let p1 = DesignPoint {
            pe_idx: 3,
            buf_idx: 3,
        };
        let p2 = DesignPoint {
            pe_idx: 10,
            buf_idx: 5,
        };
        ctx.evaluate(p1);
        ctx.evaluate(p2);
        assert_eq!(ctx.num_evals(), 2);
        assert_eq!(ctx.trace().len(), 2);
        assert!(ctx.trace()[1] <= ctx.trace()[0]);
        assert!(ctx.best().is_some());
    }

    #[test]
    fn infeasible_points_get_penalized_not_best() {
        let engine = EvalEngine::table_i_default();
        let mut ctx = SearchContext::new(&engine, test_input());
        let infeasible = DesignPoint {
            pe_idx: 63,
            buf_idx: 11,
        };
        assert!(!engine.is_feasible(infeasible));
        ctx.evaluate(infeasible);
        assert!(
            ctx.best().is_none(),
            "infeasible point must not become best"
        );
    }

    #[test]
    fn repeated_evaluations_are_answered_from_cache() {
        let engine = EvalEngine::table_i_default();
        let mut ctx = SearchContext::new(&engine, test_input());
        let p = DesignPoint {
            pe_idx: 9,
            buf_idx: 4,
        };
        let a = ctx.evaluate(p);
        let misses = engine.stats().point_misses;
        let b = ctx.evaluate(p);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(
            engine.stats().point_misses,
            misses,
            "second eval re-ran the cost model"
        );
        assert_eq!(ctx.num_evals(), 2, "query accounting still counts both");
    }

    /// Shared harness: every searcher must beat random-ish baselines of
    /// the oracle gap within its budget.
    pub(crate) fn assert_searcher_close_to_oracle(s: &mut dyn Searcher, budget: usize, slack: f64) {
        let engine = EvalEngine::table_i_default();
        let input = test_input();
        let oracle = engine.oracle(&input);
        let res = s.search(&engine, input, budget);
        assert!(
            res.num_evals <= budget + 8,
            "{} overspent: {}",
            s.name(),
            res.num_evals
        );
        assert!(
            res.best_score <= oracle.best_score * slack,
            "{}: {} vs oracle {} (slack {slack})",
            s.name(),
            res.best_score,
            oracle.best_score
        );
        assert!(engine.is_feasible(res.best_point));
    }
}
