//! Simulated annealing over the design grid.

use ai2_tensor::rng;
use ai2_workloads::generator::DseInput;
use rand::Rng;

use crate::engine::EvalEngine;
use crate::search::{SearchContext, SearchResult, Searcher};
use crate::space::DesignPoint;

/// Simulated annealing: random-walk proposals over neighbouring grid
/// points with a geometric temperature schedule.
#[derive(Debug, Clone)]
pub struct AnnealingSearcher {
    seed: u64,
    /// Initial temperature as a fraction of the first score.
    t0_frac: f64,
    /// Per-step temperature decay.
    decay: f64,
    /// Warm start: begin the walk here instead of at a random point.
    start: Option<DesignPoint>,
}

impl AnnealingSearcher {
    /// Annealer with the default schedule (`T₀ = 0.3·score₀`, decay 0.97).
    pub fn new(seed: u64) -> Self {
        AnnealingSearcher {
            seed,
            t0_frac: 0.3,
            decay: 0.97,
            start: None,
        }
    }

    /// Overrides the schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay < 1` and `t0_frac > 0`.
    pub fn with_schedule(mut self, t0_frac: f64, decay: f64) -> Self {
        assert!(t0_frac > 0.0, "AnnealingSearcher: t0_frac must be positive");
        assert!(
            (0.0..1.0).contains(&decay),
            "AnnealingSearcher: decay in (0,1)"
        );
        self.t0_frac = t0_frac;
        self.decay = decay;
        self
    }

    /// Seeds the walk at `p` (a pipeline's incoming best candidate)
    /// instead of a random point. The seed is evaluated first, so a
    /// warm-started search can never report worse than its seed.
    /// Without a start point the walk behaves exactly as before.
    pub fn with_start(mut self, p: DesignPoint) -> Self {
        self.start = Some(p);
        self
    }

    /// The annealing loop over a caller-built context — the pipeline
    /// entry point, where the context carries a per-request goal
    /// ([`SearchContext::with_goal`]) rather than the engine task's.
    pub fn search_in(&self, ctx: &mut SearchContext<'_>, budget_evals: usize) {
        let mut r = rng::seeded(self.seed);
        let engine = ctx.engine();
        let space = engine.space();
        if budget_evals == 0 {
            return;
        }
        let mut current = match self.start {
            Some(p) => p,
            None => DesignPoint {
                pe_idx: r.random_range(0..space.num_pe_choices()),
                buf_idx: r.random_range(0..space.num_buf_choices()),
            },
        };
        let mut current_score = ctx.evaluate(current);
        let mut temp = current_score * self.t0_frac;
        for _ in 1..budget_evals {
            // neighbour proposal: jump ±1..4 in PE, ±1 in buffer
            let dp = r.random_range(-4i64..=4) as isize;
            let db = r.random_range(-1i64..=1) as isize;
            let cand = space.clamp(current.pe_idx as isize + dp, current.buf_idx as isize + db);
            let cand_score = ctx.evaluate(cand);
            let accept = cand_score <= current_score || {
                let p = ((current_score - cand_score) / temp.max(1e-9)).exp();
                r.random_range(0.0..1.0) < p
            };
            if accept {
                current = cand;
                current_score = cand_score;
            }
            temp *= self.decay;
        }
    }
}

impl Searcher for AnnealingSearcher {
    fn search(
        &mut self,
        engine: &EvalEngine,
        input: DseInput,
        budget_evals: usize,
    ) -> SearchResult {
        let mut ctx = SearchContext::new(engine, input);
        self.search_in(&mut ctx, budget_evals);
        SearchResult::from_context(ctx)
    }

    fn name(&self) -> &'static str {
        "annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests::{assert_searcher_close_to_oracle, test_input};
    use crate::search::RandomSearcher;

    #[test]
    fn annealing_close_to_oracle() {
        assert_searcher_close_to_oracle(&mut AnnealingSearcher::new(5), 250, 1.30);
    }

    #[test]
    fn annealing_beats_random_at_equal_budget() {
        let engine = EvalEngine::table_i_default();
        let input = test_input();
        let budget = 60;
        // average over seeds to keep the comparison robust
        let avg = |res: Vec<f64>| res.iter().sum::<f64>() / res.len() as f64;
        let ann = avg((0..5)
            .map(|s| {
                AnnealingSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        let rnd = avg((0..5)
            .map(|s| {
                RandomSearcher::new(s)
                    .search(&engine, input, budget)
                    .best_score
            })
            .collect());
        assert!(
            ann <= rnd * 1.25,
            "annealing ({ann}) should not lose clearly to random ({rnd})"
        );
    }

    #[test]
    fn zero_budget_falls_back_to_smallest_config() {
        let engine = EvalEngine::table_i_default();
        let res = AnnealingSearcher::new(1).search(&engine, test_input(), 0);
        assert_eq!(res.num_evals, 0);
        assert!(engine.is_feasible(res.best_point));
    }
}
