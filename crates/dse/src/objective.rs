//! DSE objectives, budgets and the exhaustive oracle.

use ai2_maestro::{CostModel, CostReport};
use ai2_workloads::generator::DseInput;
use serde::{Deserialize, Serialize};

use crate::space::{DesignPoint, DesignSpace};

/// The optimization metric of the DSE task. The paper's experiments use
/// latency ("the optimization metric (i.e. reward) set as latency"); the
/// other ConfuciuX objectives are provided for the extension benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise latency (cycles).
    #[default]
    Latency,
    /// Minimise energy (pJ).
    Energy,
    /// Minimise energy-delay product.
    Edp,
}

impl Objective {
    /// Extracts the scalar score (lower is better) from a cost report.
    pub fn score(self, report: &CostReport) -> f64 {
        match self {
            Objective::Latency => report.latency_cycles as f64,
            Objective::Energy => report.energy_pj,
            Objective::Edp => report.edp(),
        }
    }
}

/// Platform area budget, mirroring ConfuciuX's edge/cloud settings.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Budget {
    /// Tight mobile/edge budget (0.25 mm² under the default area model —
    /// roughly a quarter of the maximal Table I configuration).
    #[default]
    Edge,
    /// Generous cloud budget (0.55 mm²).
    Cloud,
    /// No budget: every grid point is feasible.
    Unbounded,
    /// Custom limit in mm².
    Custom(f64),
}

impl Budget {
    /// The area limit in mm², if any.
    pub fn limit_mm2(self) -> Option<f64> {
        match self {
            Budget::Edge => Some(0.25),
            Budget::Cloud => Some(0.55),
            Budget::Unbounded => None,
            Budget::Custom(v) => Some(v),
        }
    }
}

/// Result of labeling one DSE input with the exhaustive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleResult {
    /// The optimal design point.
    pub best_point: DesignPoint,
    /// Its objective score (e.g. latency in cycles).
    pub best_score: f64,
    /// Number of feasible grid points.
    pub feasible_points: usize,
}

/// A fully specified DSE problem: space × objective × budget × cost
/// model. This is the `O(10⁹)`-input task of the paper's §III-A.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DseTask {
    space: DesignSpace,
    /// Optimization metric.
    pub objective: Objective,
    /// Area budget preset.
    pub budget: Budget,
    /// The MAESTRO-style cost model.
    pub cost_model: CostModel,
}

impl DseTask {
    /// The default experimental setup: Table I space, latency objective,
    /// edge budget, default cost model.
    pub fn table_i_default() -> Self {
        DseTask {
            space: DesignSpace::table_i(),
            objective: Objective::Latency,
            budget: Budget::Edge,
            cost_model: CostModel::default(),
        }
    }

    /// A task with explicit components.
    ///
    /// # Panics
    ///
    /// Panics if no grid point fits the budget — every task must have at
    /// least one feasible configuration.
    pub fn new(
        space: DesignSpace,
        objective: Objective,
        budget: Budget,
        cost_model: CostModel,
    ) -> Self {
        let task = DseTask {
            space,
            objective,
            budget,
            cost_model,
        };
        assert!(
            task.space.iter_points().any(|p| task.is_feasible(p)),
            "DseTask: budget {budget:?} admits no design point"
        );
        task
    }

    /// The output design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Whether a design point fits the area budget.
    pub fn is_feasible(&self, p: DesignPoint) -> bool {
        match self.budget.limit_mm2() {
            None => true,
            Some(limit) => self.cost_model.area_mm2(&self.space.config(p)) <= limit,
        }
    }

    /// Evaluates one design point; `None` if it violates the budget.
    pub fn score(&self, input: &DseInput, p: DesignPoint) -> Option<f64> {
        if !self.is_feasible(p) {
            return None;
        }
        let report = self
            .cost_model
            .evaluate(&input.gemm, input.dataflow, &self.space.config(p));
        Some(self.objective.score(&report))
    }

    /// Evaluates one design point ignoring the budget (used by searchers
    /// that handle infeasibility via penalties).
    pub fn score_unchecked(&self, input: &DseInput, p: DesignPoint) -> f64 {
        let report = self
            .cost_model
            .evaluate(&input.gemm, input.dataflow, &self.space.config(p));
        self.objective.score(&report)
    }

    /// Exhaustively evaluates the grid and returns the exact optimum.
    ///
    /// Ties are broken toward smaller area, then smaller flat index, so
    /// the label is deterministic and the "cheapest of the equally fast"
    /// configurations — which is what makes small layers prefer small
    /// configurations (the paper's Fig. 3b long tail).
    pub fn oracle(&self, input: &DseInput) -> OracleResult {
        let mut best: Option<(f64, f64, DesignPoint)> = None;
        let mut feasible = 0usize;
        for p in self.space.iter_points() {
            let Some(score) = self.score(input, p) else {
                continue;
            };
            feasible += 1;
            let area = self.cost_model.area_mm2(&self.space.config(p));
            let better = match &best {
                None => true,
                Some((bs, ba, _)) => score < *bs || (score == *bs && area < *ba),
            };
            if better {
                best = Some((score, area, p));
            }
        }
        let (best_score, _, best_point) =
            best.expect("DseTask invariant: at least one feasible point");
        OracleResult {
            best_point,
            best_score,
            feasible_points: feasible,
        }
    }

    /// Scores every grid point (NaN for infeasible), flat-indexed — used
    /// by the landscape figures.
    pub fn score_grid(&self, input: &DseInput) -> Vec<f64> {
        self.space
            .iter_points()
            .map(|p| self.score(input, p).unwrap_or(f64::NAN))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::{Dataflow, GemmWorkload};

    fn input(m: u64, n: u64, k: u64, df: Dataflow) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: df,
        }
    }

    #[test]
    fn oracle_beats_or_matches_every_feasible_point() {
        let task = DseTask::table_i_default();
        let inp = input(64, 300, 200, Dataflow::OutputStationary);
        let res = task.oracle(&inp);
        for p in task.space().iter_points() {
            if let Some(s) = task.score(&inp, p) {
                assert!(res.best_score <= s, "oracle not optimal at {p:?}");
            }
        }
    }

    #[test]
    fn edge_budget_excludes_large_configs() {
        let task = DseTask::table_i_default();
        let huge = DesignPoint {
            pe_idx: 63,
            buf_idx: 11,
        };
        assert!(!task.is_feasible(huge));
        let tiny = DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        };
        assert!(task.is_feasible(tiny));
        let inp = input(16, 64, 32, Dataflow::WeightStationary);
        assert!(task.score(&inp, huge).is_none());
        assert!(task.score(&inp, tiny).is_some());
    }

    #[test]
    fn unbounded_budget_admits_everything() {
        let mut task = DseTask::table_i_default();
        task.budget = Budget::Unbounded;
        let inp = input(16, 64, 32, Dataflow::WeightStationary);
        assert_eq!(task.oracle(&inp).feasible_points, 768);
    }

    #[test]
    fn oracle_is_deterministic() {
        let task = DseTask::table_i_default();
        let inp = input(100, 700, 450, Dataflow::RowStationary);
        assert_eq!(task.oracle(&inp), task.oracle(&inp));
    }

    #[test]
    fn optimum_depends_on_workload() {
        // different layer shapes must prefer different configurations —
        // otherwise the DSE task would be trivial
        let task = DseTask::table_i_default();
        let small = task.oracle(&input(2, 16, 8, Dataflow::OutputStationary));
        let large = task.oracle(&input(256, 1600, 1100, Dataflow::OutputStationary));
        assert_ne!(
            small.best_point, large.best_point,
            "small and large layers should want different hardware"
        );
    }

    #[test]
    fn optimum_depends_on_dataflow() {
        let task = DseTask::table_i_default();
        let base = input(16, 1600, 900, Dataflow::WeightStationary);
        let mut alt = base;
        alt.dataflow = Dataflow::RowStationary;
        let a = task.oracle(&base);
        let b = task.oracle(&alt);
        // at least the scores must differ; usually the points do too
        assert!(
            a.best_point != b.best_point || (a.best_score - b.best_score).abs() > 0.0,
            "dataflow had no effect at all"
        );
    }

    #[test]
    fn score_grid_has_nan_for_infeasible() {
        let task = DseTask::table_i_default();
        let inp = input(32, 128, 64, Dataflow::WeightStationary);
        let grid = task.score_grid(&inp);
        assert_eq!(grid.len(), 768);
        assert!(
            grid.iter().any(|s| s.is_nan()),
            "edge budget should exclude some"
        );
        assert!(grid.iter().any(|s| !s.is_nan()));
    }

    #[test]
    fn objectives_extract_different_scores() {
        let r = CostModel::default().evaluate(
            &GemmWorkload::new(64, 64, 64),
            Dataflow::WeightStationary,
            &ai2_maestro::AcceleratorConfig::new(64, 64 * 1024),
        );
        let lat = Objective::Latency.score(&r);
        let en = Objective::Energy.score(&r);
        let edp = Objective::Edp.score(&r);
        assert!((edp - lat * en).abs() / edp < 1e-9);
    }

    #[test]
    #[should_panic(expected = "admits no design point")]
    fn impossible_budget_rejected() {
        DseTask::new(
            DesignSpace::table_i(),
            Objective::Latency,
            Budget::Custom(1e-9),
            CostModel::default(),
        );
    }
}
