//! Label-distribution statistics — the quantitative side of the paper's
//! Fig. 3b (long-tailed distribution of samples over optimal design
//! points).

use std::collections::HashMap;

use crate::dataset::DseDataset;
use crate::space::{DesignPoint, DesignSpace};

/// Histogram of how often each design point is the optimum.
#[derive(Debug, Clone)]
pub struct LabelHistogram {
    counts: HashMap<DesignPoint, usize>,
    total: usize,
}

impl LabelHistogram {
    /// Builds the histogram from a dataset.
    pub fn from_dataset(ds: &DseDataset) -> Self {
        let mut counts = HashMap::new();
        for s in &ds.samples {
            *counts.entry(s.optimal).or_insert(0) += 1;
        }
        LabelHistogram {
            counts,
            total: ds.samples.len(),
        }
    }

    /// Number of distinct design points that appear as optima.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Counts sorted descending — the series plotted (log-scale) in
    /// Fig. 3b.
    pub fn sorted_counts(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Fraction of all samples covered by the `top` most frequent labels
    /// (head concentration of the long tail).
    pub fn head_coverage(&self, top: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s: usize = self.sorted_counts().iter().take(top).sum();
        s as f64 / self.total as f64
    }

    /// Shannon entropy of the label distribution in bits; low entropy
    /// relative to `log2(num_distinct)` indicates imbalance.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Imbalance factor: count of most frequent label ÷ least frequent.
    pub fn imbalance_factor(&self) -> f64 {
        let sorted = self.sorted_counts();
        match (sorted.first(), sorted.last()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 0.0,
        }
    }

    /// Count for one design point.
    pub fn count(&self, p: DesignPoint) -> usize {
        self.counts.get(&p).copied().unwrap_or(0)
    }

    /// `(flat_label, count)` pairs for CSV export, sorted by flat index.
    pub fn flat_counts(&self, space: &DesignSpace) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .counts
            .iter()
            .map(|(p, c)| (space.flat_index(*p), *c))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DseSample;

    fn ds_with_labels(labels: &[(usize, usize)]) -> DseDataset {
        DseDataset {
            backend: crate::BackendId::Analytic,
            samples: labels
                .iter()
                .map(|&(pe, buf)| DseSample {
                    m: 1,
                    n: 1,
                    k: 1,
                    dataflow: 0,
                    optimal: DesignPoint {
                        pe_idx: pe,
                        buf_idx: buf,
                    },
                    best_score: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn histogram_counts() {
        let ds = ds_with_labels(&[(0, 0), (0, 0), (1, 0), (2, 3)]);
        let h = LabelHistogram::from_dataset(&ds);
        assert_eq!(h.total(), 4);
        assert_eq!(h.num_distinct(), 3);
        assert_eq!(h.sorted_counts(), vec![2, 1, 1]);
        assert_eq!(
            h.count(DesignPoint {
                pe_idx: 0,
                buf_idx: 0
            }),
            2
        );
    }

    #[test]
    fn head_coverage_and_imbalance() {
        let ds = ds_with_labels(
            [(0, 0); 8]
                .iter()
                .copied()
                .chain([(1, 1), (2, 2)])
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let h = LabelHistogram::from_dataset(&ds);
        assert!((h.head_coverage(1) - 0.8).abs() < 1e-9);
        assert_eq!(h.imbalance_factor(), 8.0);
    }

    #[test]
    fn entropy_uniform_vs_skewed() {
        let uniform =
            LabelHistogram::from_dataset(&ds_with_labels(&[(0, 0), (1, 1), (2, 2), (3, 3)]));
        let skewed =
            LabelHistogram::from_dataset(&ds_with_labels(&[(0, 0), (0, 0), (0, 0), (1, 1)]));
        assert!(uniform.entropy_bits() > skewed.entropy_bits());
        assert!((uniform.entropy_bits() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flat_counts_sorted() {
        let space = DesignSpace::table_i();
        let ds = ds_with_labels(&[(5, 2), (0, 1), (5, 2)]);
        let h = LabelHistogram::from_dataset(&ds);
        let fc = h.flat_counts(&space);
        assert_eq!(fc.len(), 2);
        assert!(fc[0].0 < fc[1].0);
        assert_eq!(fc[1], (5 * 12 + 2, 2));
    }
}
