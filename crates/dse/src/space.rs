//! The hardware design space of the paper's Table I.

use ai2_maestro::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// One point of the output design space: indices into the PE-count and
/// buffer-size option lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Index into [`DesignSpace::pe_options`].
    pub pe_idx: usize,
    /// Index into [`DesignSpace::buf_options`].
    pub buf_idx: usize,
}

/// The discrete output grid (Table I: `PE (64)`, `buffer size (12)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    pe_options: Vec<u32>,
    buf_options: Vec<u64>,
}

impl DesignSpace {
    /// The paper's space: PE counts `8, 16, …, 512` (64 options) and L2
    /// buffer sizes `1 KiB … 2 MiB` in powers of two (12 options).
    pub fn table_i() -> Self {
        DesignSpace {
            pe_options: (1..=64).map(|i| i * 8).collect(),
            buf_options: (0..12).map(|i| 1024u64 << i).collect(),
        }
    }

    /// A custom space.
    ///
    /// # Panics
    ///
    /// Panics if either option list is empty or not strictly ascending.
    pub fn new(pe_options: Vec<u32>, buf_options: Vec<u64>) -> Self {
        assert!(!pe_options.is_empty(), "DesignSpace: no PE options");
        assert!(!buf_options.is_empty(), "DesignSpace: no buffer options");
        assert!(
            pe_options.windows(2).all(|w| w[0] < w[1]),
            "DesignSpace: PE options must ascend"
        );
        assert!(
            buf_options.windows(2).all(|w| w[0] < w[1]),
            "DesignSpace: buffer options must ascend"
        );
        DesignSpace {
            pe_options,
            buf_options,
        }
    }

    /// PE-count options, ascending.
    pub fn pe_options(&self) -> &[u32] {
        &self.pe_options
    }

    /// Buffer-size options in bytes, ascending.
    pub fn buf_options(&self) -> &[u64] {
        &self.buf_options
    }

    /// Number of PE choices (64 in Table I).
    pub fn num_pe_choices(&self) -> usize {
        self.pe_options.len()
    }

    /// Number of buffer choices (12 in Table I).
    pub fn num_buf_choices(&self) -> usize {
        self.buf_options.len()
    }

    /// Total grid size (768 in Table I).
    pub fn num_points(&self) -> usize {
        self.pe_options.len() * self.buf_options.len()
    }

    /// The hardware configuration at a design point.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn config(&self, p: DesignPoint) -> AcceleratorConfig {
        AcceleratorConfig::new(self.pe_options[p.pe_idx], self.buf_options[p.buf_idx])
    }

    /// Iterates over every design point, PE-major.
    pub fn iter_points(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        let nb = self.buf_options.len();
        (0..self.num_points()).map(move |f| DesignPoint {
            pe_idx: f / nb,
            buf_idx: f % nb,
        })
    }

    /// Flat index of a point (PE-major), the classification label of the
    /// joint-output baselines.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range — an out-of-range
    /// `buf_idx` would otherwise silently alias a different point.
    pub fn flat_index(&self, p: DesignPoint) -> usize {
        assert!(
            p.pe_idx < self.pe_options.len() && p.buf_idx < self.buf_options.len(),
            "flat_index: {p:?} outside the {}x{} grid",
            self.pe_options.len(),
            self.buf_options.len()
        );
        p.pe_idx * self.buf_options.len() + p.buf_idx
    }

    /// Inverse of [`DesignSpace::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat ≥ num_points()`.
    pub fn from_flat(&self, flat: usize) -> DesignPoint {
        assert!(flat < self.num_points(), "from_flat: {flat} out of range");
        DesignPoint {
            pe_idx: flat / self.buf_options.len(),
            buf_idx: flat % self.buf_options.len(),
        }
    }

    /// Clamps arbitrary indices into range (used by mutation operators).
    pub fn clamp(&self, pe_idx: isize, buf_idx: isize) -> DesignPoint {
        DesignPoint {
            pe_idx: pe_idx.clamp(0, self.pe_options.len() as isize - 1) as usize,
            buf_idx: buf_idx.clamp(0, self.buf_options.len() as isize - 1) as usize,
        }
    }
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_dimensions_match_paper() {
        let s = DesignSpace::table_i();
        assert_eq!(s.num_pe_choices(), 64);
        assert_eq!(s.num_buf_choices(), 12);
        assert_eq!(s.num_points(), 768);
        assert_eq!(s.pe_options()[0], 8);
        assert_eq!(*s.pe_options().last().unwrap(), 512);
        assert_eq!(s.buf_options()[0], 1024);
        assert_eq!(*s.buf_options().last().unwrap(), 2 * 1024 * 1024);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = DesignSpace::table_i();
        for p in s.iter_points() {
            assert_eq!(s.from_flat(s.flat_index(p)), p);
        }
        assert_eq!(s.iter_points().count(), 768);
    }

    #[test]
    fn config_translates_indices() {
        let s = DesignSpace::table_i();
        let hw = s.config(DesignPoint {
            pe_idx: 7,
            buf_idx: 6,
        });
        assert_eq!(hw.num_pes, 64);
        assert_eq!(hw.l2_bytes, 64 * 1024);
    }

    #[test]
    fn clamp_bounds() {
        let s = DesignSpace::table_i();
        assert_eq!(
            s.clamp(-5, 100),
            DesignPoint {
                pe_idx: 0,
                buf_idx: 11
            }
        );
        assert_eq!(
            s.clamp(1000, -1),
            DesignPoint {
                pe_idx: 63,
                buf_idx: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn non_ascending_rejected() {
        DesignSpace::new(vec![8, 8], vec![1024]);
    }
}
