//! DSE dataset generation, splitting and persistence.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use ai2_maestro::{Dataflow, GemmWorkload};
use ai2_tensor::rng;
use ai2_workloads::generator::{DseInput, SamplingStrategy, WorkloadSampler};
use serde::{Deserialize, Serialize};

use crate::backend::BackendId;
use crate::engine::EvalEngine;
use crate::objective::DseTask;
use crate::space::DesignPoint;

/// One labeled sample: DSE input features plus the oracle-optimal design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseSample {
    /// Workload `M` dimension.
    pub m: u64,
    /// Workload `N` dimension.
    pub n: u64,
    /// Workload `K` dimension.
    pub k: u64,
    /// Dataflow index (0 = WS, 1 = OS, 2 = RS).
    pub dataflow: usize,
    /// Optimal design point.
    pub optimal: DesignPoint,
    /// Objective score at the optimum (latency in cycles by default).
    pub best_score: f64,
}

impl DseSample {
    /// Reconstructs the [`DseInput`] of this sample.
    pub fn input(&self) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(self.m, self.n, self.k),
            dataflow: Dataflow::from_index(self.dataflow),
        }
    }

    /// Raw input features `[M, N, K, dataflow]`.
    pub fn features(&self) -> [f32; 4] {
        [
            self.m as f32,
            self.n as f32,
            self.k as f32,
            self.dataflow as f32,
        ]
    }
}

/// Parameters of a generation run.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Number of samples.
    pub num_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Sampling strategy over the Table I input space.
    pub strategy: SamplingStrategy,
    /// Cost backend labeling the samples ([`DseDataset::generate`]
    /// only; [`DseDataset::generate_with`] labels with the caller's
    /// engine, whatever its backend).
    pub backend: BackendId,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            num_samples: 20_000,
            seed: 0xA12C,
            threads: 0,
            strategy: SamplingStrategy::default(),
            backend: BackendId::Analytic,
        }
    }
}

/// A labeled DSE dataset (the paper's 100 K-sample corpus, scaled by
/// configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseDataset {
    /// The cost backend whose oracle produced `best_score`/`optimal` —
    /// label provenance, persisted with the samples so a saved
    /// systolic-labeled corpus can never be mistaken for an analytic
    /// one after a `load`.
    pub backend: BackendId,
    /// Samples in generation order.
    pub samples: Vec<DseSample>,
}

/// Error loading or saving a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset io error: {e}"),
            DatasetError::Parse(e) => write!(f, "dataset parse error: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Parse(e)
    }
}

impl DseDataset {
    /// Generates a dataset by sampling inputs and labeling each with the
    /// exhaustive oracle, fanned out over a transient [`EvalEngine`]
    /// with `config.threads` workers.
    ///
    /// Inputs are drawn up front from a single seeded stream and the
    /// oracle is a pure function of the input, so the result is
    /// deterministic regardless of thread count.
    pub fn generate(task: &DseTask, config: &GenerateConfig) -> DseDataset {
        // The transient engine keeps only oracle labels (no grids): the
        // inputs of a generation run are almost all distinct, so caching
        // their grids would cost memory without saving work.
        // backend_for_task: a cascade label source stages its
        // prefilter/escalation grid over this task's own space
        let backend = crate::backend::backend_for_task(config.backend, task);
        let engine = EvalEngine::with_backend_threads(task.clone(), backend, config.threads)
            .with_grid_capacity(0);
        Self::generate_with(&engine, config)
    }

    /// [`DseDataset::generate`] through a caller-provided engine, so the
    /// labels land in (and reuse) a shared cache.
    pub fn generate_with(engine: &EvalEngine, config: &GenerateConfig) -> DseDataset {
        let sampler = WorkloadSampler::with_strategy(config.strategy);
        let mut r = rng::seeded(config.seed);
        let inputs = sampler.sample_n(&mut r, config.num_samples);
        Self::label_inputs(engine, &inputs)
    }

    /// Labels a caller-provided list of inputs through `engine`'s
    /// oracle — the online-refresh entry point: the serving layer's
    /// replay buffer holds *observed* queries (not sampled ones), and
    /// this turns them into a training corpus with the same provenance
    /// guarantees as a generated dataset.
    ///
    /// Labels land in (and reuse) the engine's shared caches, so
    /// re-labeling queries the serving path already verified is nearly
    /// free.
    pub fn label_inputs(engine: &EvalEngine, inputs: &[DseInput]) -> DseDataset {
        let labels = engine.oracle_batch(inputs);
        DseDataset {
            backend: engine.backend_id(),
            samples: inputs
                .iter()
                .zip(&labels)
                .map(|(input, res)| DseSample {
                    m: input.gemm.m,
                    n: input.gemm.n,
                    k: input.gemm.k,
                    dataflow: input.dataflow.index(),
                    optimal: res.best_point,
                    best_score: res.best_score,
                })
                .collect(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, test)` with `train_frac` of the samples in
    /// the training set, after a seeded shuffle (the paper's 80/20).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (DseDataset, DseDataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "split: train_frac {train_frac} out of (0, 1)"
        );
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut r = rng::seeded(seed);
        idx.shuffle(&mut r);
        let cut = ((self.samples.len() as f64) * train_frac).round() as usize;
        let take = |ids: &[usize]| DseDataset {
            backend: self.backend,
            samples: ids.iter().map(|&i| self.samples[i]).collect(),
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }

    /// Saves as JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DatasetError> {
        fs::write(path, serde_json::to_string(self)?)?;
        Ok(())
    }

    /// Loads from JSON. Files written before label provenance existed
    /// carry no `backend` key; they were all analytic-labeled, so they
    /// load as [`BackendId::Analytic`] rather than erroring (any other
    /// parse failure — including a present-but-corrupt `backend` value —
    /// still errors).
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<DseDataset, DatasetError> {
        let text = fs::read_to_string(path)?;
        match serde_json::from_str::<DseDataset>(&text) {
            Ok(ds) => Ok(ds),
            Err(e) if e.to_string().contains("missing field `backend`") => {
                #[derive(Deserialize)]
                struct LegacyDataset {
                    samples: Vec<DseSample>,
                }
                let legacy: LegacyDataset = serde_json::from_str(&text)?;
                Ok(DseDataset {
                    backend: BackendId::Analytic,
                    samples: legacy.samples,
                })
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(n: usize) -> GenerateConfig {
        GenerateConfig {
            num_samples: n,
            seed: 7,
            threads: 2,
            ..GenerateConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_across_thread_counts() {
        let task = DseTask::table_i_default();
        let mut c1 = tiny_config(24);
        c1.threads = 1;
        let mut c2 = tiny_config(24);
        c2.threads = 2;
        let a = DseDataset::generate(&task, &c1);
        let b = DseDataset::generate(&task, &c2);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_match_oracle() {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(&task, &tiny_config(8));
        for s in &ds.samples {
            let oracle = task.oracle(&s.input());
            assert_eq!(s.optimal, oracle.best_point);
            assert_eq!(s.best_score, oracle.best_score);
        }
    }

    #[test]
    fn systolic_backend_labels_come_from_the_systolic_engine() {
        let task = DseTask::table_i_default();
        let cfg = GenerateConfig {
            backend: BackendId::Systolic,
            ..tiny_config(10)
        };
        let ds = DseDataset::generate(&task, &cfg);
        assert_eq!(ds.backend, BackendId::Systolic);
        let engine = EvalEngine::for_backend(task.clone(), BackendId::Systolic);
        let mut any_differs = false;
        for s in &ds.samples {
            let oracle = engine.oracle(&s.input());
            assert_eq!(s.optimal, oracle.best_point);
            assert_eq!(s.best_score.to_bits(), oracle.best_score.to_bits());
            if s.best_score.to_bits() != task.oracle(&s.input()).best_score.to_bits() {
                any_differs = true;
            }
        }
        assert!(any_differs, "systolic labels never diverged from analytic");
    }

    #[test]
    fn cascade_backend_labels_come_from_the_cascade_engine() {
        // provenance: a cascade-labeled corpus records Cascade, and its
        // labels agree bit-for-bit with a fresh cascade engine's oracle
        let task = DseTask::table_i_default();
        let cfg = GenerateConfig {
            backend: BackendId::Cascade,
            ..tiny_config(6)
        };
        let ds = DseDataset::generate(&task, &cfg);
        assert_eq!(ds.backend, BackendId::Cascade);
        let engine = EvalEngine::for_backend(task.clone(), BackendId::Cascade);
        for s in &ds.samples {
            let oracle = engine.oracle(&s.input());
            assert_eq!(s.optimal, oracle.best_point);
            assert_eq!(s.best_score.to_bits(), oracle.best_score.to_bits());
        }
    }

    #[test]
    fn label_inputs_matches_generated_labels() {
        // labeling observed inputs directly must agree bit-for-bit with
        // the sampled-generation path over the same inputs — the
        // online-refresh worker relies on this equivalence
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(&task, &tiny_config(12));
        let inputs: Vec<_> = ds.samples.iter().map(DseSample::input).collect();
        let engine = EvalEngine::with_threads(task, 2);
        let relabeled = DseDataset::label_inputs(&engine, &inputs);
        assert_eq!(relabeled.backend, BackendId::Analytic);
        assert_eq!(relabeled.samples.len(), ds.samples.len());
        for (a, b) in relabeled.samples.iter().zip(&ds.samples) {
            assert_eq!(a.optimal, b.optimal);
            assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
            assert_eq!((a.m, a.n, a.k, a.dataflow), (b.m, b.n, b.k, b.dataflow));
        }
        // empty input list → empty dataset, no panic
        assert!(DseDataset::label_inputs(&engine, &[]).is_empty());
    }

    #[test]
    fn split_partitions_everything() {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(&task, &tiny_config(30));
        let (train, test) = ds.split(0.8, 1);
        assert_eq!(train.len() + test.len(), 30);
        assert_eq!(train.len(), 24);
        // deterministic
        let (train2, _) = ds.split(0.8, 1);
        assert_eq!(train, train2);
        // different seed → different split
        let (train3, _) = ds.split(0.8, 2);
        assert_ne!(train, train3);
    }

    #[test]
    fn save_load_roundtrip() {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(&task, &tiny_config(6));
        let dir = std::env::temp_dir().join("ai2_dse_ds_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save(&path).unwrap();
        let back = DseDataset::load(&path).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.backend, BackendId::Analytic); // provenance survives
        fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_files_without_provenance_load_as_analytic() {
        // corpora saved before the backend field existed were all
        // analytic-labeled; they must keep loading
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(&task, &tiny_config(4));
        let full = serde_json::to_string(&ds).unwrap();
        let json_value: serde_json::JsonValue = serde_json::from_str(&full).unwrap();
        // strip the backend key to reconstruct the legacy shape
        let serde::Value::Object(entries) = &json_value else {
            panic!("dataset serializes as an object");
        };
        let legacy_value = serde::Value::Object(
            entries
                .iter()
                .filter(|(k, _)| k != "backend")
                .cloned()
                .collect(),
        );
        let dir = std::env::temp_dir().join("ai2_dse_ds_legacy_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        fs::write(&path, serde_json::to_string(&legacy_value).unwrap()).unwrap();
        let back = DseDataset::load(&path).unwrap();
        assert_eq!(back.backend, BackendId::Analytic);
        assert_eq!(back.samples, ds.samples);
        // …but a present-and-corrupt backend value still errors
        fs::write(&path, full.replace("\"Analytic\"", "\"Rtl\"")).unwrap();
        assert!(DseDataset::load(&path).is_err());
        fs::remove_file(path).ok();
    }

    #[test]
    fn sample_feature_roundtrip() {
        let s = DseSample {
            m: 10,
            n: 20,
            k: 30,
            dataflow: 2,
            optimal: DesignPoint {
                pe_idx: 1,
                buf_idx: 2,
            },
            best_score: 123.0,
        };
        assert_eq!(s.features(), [10.0, 20.0, 30.0, 2.0]);
        assert_eq!(s.input().dataflow.index(), 2);
    }
}
