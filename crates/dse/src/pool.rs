//! A small shared worker pool for fanning independent evaluations out
//! over threads.
//!
//! This replaces the previous ad-hoc machinery in `dataset.rs`
//! (crossbeam scoped threads plus one mutex per output slot): workers
//! claim chunks of the index range from a shared atomic counter — a
//! self-balancing schedule where fast workers steal the remaining range
//! from slow ones — and each output slot is written exactly once, so no
//! per-slot locking is needed.
//!
//! The pool is re-entrancy safe: when [`WorkPool::run`] is called from
//! inside a pool worker (e.g. a batched oracle sweep whose per-input
//! labeling itself asks for a parallel grid sweep), the nested call runs
//! inline on the calling worker instead of over-subscribing the machine.

use std::cell::Cell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// How many indices a worker claims per counter increment. Small enough
/// to balance jagged per-item costs, large enough to keep the counter
/// cold.
const CHUNK: usize = 8;

/// A scoped, self-balancing worker pool.
#[derive(Debug, Clone)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool with `threads` workers; `0` means the machine's available
    /// parallelism.
    pub fn new(threads: usize) -> WorkPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n`, fanned out over the pool.
    ///
    /// `f` must be safe to call concurrently from multiple threads.
    /// Nested calls (from inside a pool worker) run inline.
    pub fn run<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n.div_ceil(CHUNK));
        if workers <= 1 || IN_POOL_WORKER.with(Cell::get) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + CHUNK).min(n) {
                            f(i);
                        }
                    }
                    IN_POOL_WORKER.with(|flag| flag.set(false));
                });
            }
        });
    }

    /// Computes `f(i)` for every `i in 0..n` in parallel and returns the
    /// results in index order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: the spare capacity is fully initialised below — `run`
        // calls the closure for every index in 0..n exactly once, and
        // each call writes only its own disjoint slot.
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(n);
        }
        let slots = SharedSlots(out.as_mut_ptr());
        let slots_ref = &slots;
        self.run(n, |i| {
            // SAFETY: index-disjoint writes; slot `i` is written by the
            // single worker that claimed index `i`.
            unsafe {
                slots_ref.write(i, f(i));
            }
        });
        // SAFETY: every slot was initialised above.
        out.into_iter()
            .map(|s| unsafe { s.assume_init() })
            .collect()
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::new(0)
    }
}

/// Raw output pointer made shareable across scoped workers. Soundness is
/// guaranteed by the index-disjoint write discipline of [`WorkPool::map`].
struct SharedSlots<T>(*mut MaybeUninit<T>);

unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// Each index must be written at most once, by one thread, while the
    /// backing vector outlives the writes.
    unsafe fn write(&self, i: usize, value: T) {
        (*self.0.add(i)).write(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order_and_covers_every_index() {
        let pool = WorkPool::new(4);
        let out = pool.map(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn run_executes_each_index_exactly_once() {
        let pool = WorkPool::new(3);
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.run(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_run_does_not_deadlock_or_oversubscribe() {
        let pool = WorkPool::new(4);
        let inner_sums = pool.map(16, |i| {
            let inner = pool.map(10, move |j| i * j);
            inner.iter().sum::<usize>()
        });
        for (i, s) in inner_sums.iter().enumerate() {
            assert_eq!(*s, i * 45);
        }
    }

    #[test]
    fn single_thread_pool_is_inline() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let pool = WorkPool::new(4);
        let out: Vec<usize> = pool.map(0, |i| i);
        assert!(out.is_empty());
    }
}
