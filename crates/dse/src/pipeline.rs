//! Config-driven staged recommendation pipelines.
//!
//! AIrchitect v2's one-shot predictor earns its keep at serving scale
//! inside a cheap-model/expensive-model loop: predictor one-shot, local
//! refinement, selective cycle-accurate verification (the Apollo /
//! ArchGym pattern of composable exploration stages). This module is
//! that loop as a first-class abstraction:
//!
//! * [`Stage`] — one transform over a scored candidate set. The four
//!   shipped stages are [`PredictorOneShot`] (the learned model's
//!   answer, engine-verified), [`LocalRefine`] (annealing / GAMMA
//!   warm-started at the incoming best, reusing the `search` module's
//!   implementations), [`TopKVerify`] (re-scores the surviving top-k
//!   through a second [`EvalEngine`], e.g. the cycle-accurate systolic
//!   backend), and [`ParetoFilter`] (the latency/energy non-dominated
//!   frontier).
//! * [`PipelineCfg`] — the declarative serde form (a named stage list
//!   with per-stage knobs: `budget`, `k`, `seed`, `backend`). Decoding
//!   is **strict**: unknown stage names and unknown knobs are rejected
//!   with the canonical parse error, because a typo'd knob silently
//!   ignored would serve different answers than the operator configured.
//! * [`Pipeline`] — a compiled, validated pipeline;
//!   [`Pipeline::run_batch`] is the executor the serving layer calls.
//! * [`PipelineSet`] — the named registry. It always contains
//!   `"default"`, the degenerate single-stage pipeline whose answers are
//!   bit-identical to the historical one-shot `recommend_batch` path.
//!
//! Every stage routes cost queries through one [`BackendEngines`] — one
//! memoizing [`EvalEngine`] per cost backend — so a stage switching
//! backends still hits that backend's caches, and per-(backend,
//! objective) batch grouping lives here, in exactly one place.
//!
//! Staged answers are **never worse than the one-shot stage's own best**
//! under the query objective: the executor re-scores the stage-1 best
//! under the final answer's backend and returns whichever wins
//! (feasible-first, then lower cost). The `pipeline_identity` simtest
//! invariant checks exactly this.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use ai2_workloads::generator::DseInput;

use crate::backend::{BackendId, CascadeBackend, CascadeConfig};
use crate::engine::EvalEngine;
use crate::objective::{Budget, Objective};
use crate::search::{AnnealingSearcher, GammaSearcher, SearchContext};
use crate::space::DesignPoint;

/// One [`EvalEngine`] per cost backend over the same task. Each engine
/// owns its backend, so grid/oracle caches can never mix labels across
/// backends; feasibility is identical across engines (shared area
/// model).
#[derive(Debug, Clone)]
pub struct BackendEngines {
    analytic: Arc<EvalEngine>,
    systolic: Arc<EvalEngine>,
    cascade: Arc<EvalEngine>,
    primary: BackendId,
}

impl BackendEngines {
    /// Wraps the primary engine — the one the model was trained over and
    /// predicts through, whatever its backend — and builds a sibling
    /// engine over the same task for every other backend, so queries can
    /// select any evaluator regardless of which one trained the model.
    ///
    /// The cascade engine is staged **over the analytic and systolic
    /// siblings** ([`CascadeBackend::over`]): its prefilter and
    /// escalation sub-results land in those engines' caches under their
    /// own backend keys, while its staged answers are cached in its own
    /// engine under the cascade key — per-stage memoization without any
    /// cross-backend mixing.
    pub fn new(primary: Arc<EvalEngine>) -> BackendEngines {
        let primary_id = primary.backend_id();
        let task = primary.task().clone();
        let sibling = |id: BackendId| -> Arc<EvalEngine> {
            if id == primary_id {
                Arc::clone(&primary)
            } else {
                Arc::new(EvalEngine::for_backend(task.clone(), id))
            }
        };
        let analytic = sibling(BackendId::Analytic);
        let systolic = sibling(BackendId::Systolic);
        let cascade = if primary_id == BackendId::Cascade {
            Arc::clone(&primary)
        } else {
            let staged = CascadeBackend::over(
                Arc::clone(&analytic),
                Arc::clone(&systolic),
                CascadeConfig::default(),
            );
            Arc::new(EvalEngine::with_backend_threads(task, Arc::new(staged), 0))
        };
        BackendEngines {
            analytic,
            systolic,
            cascade,
            primary: primary_id,
        }
    }

    /// The engine answering queries for `id`.
    pub fn get(&self, id: BackendId) -> &Arc<EvalEngine> {
        match id {
            BackendId::Analytic => &self.analytic,
            BackendId::Systolic => &self.systolic,
            BackendId::Cascade => &self.cascade,
        }
    }

    /// The primary engine (the model's training/prediction substrate).
    pub fn primary(&self) -> &Arc<EvalEngine> {
        self.get(self.primary)
    }
}

/// Index of a backend in per-backend counters
/// (`[analytic, systolic, cascade]`).
fn bslot(id: BackendId) -> usize {
    match id {
        BackendId::Analytic => 0,
        BackendId::Systolic => 1,
        BackendId::Cascade => 2,
    }
}

/// One scored design-point candidate flowing between stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The design point.
    pub point: DesignPoint,
    /// Cost under the query objective, scored by `backend`.
    pub cost: f64,
    /// Whether the point fits the query's area budget.
    pub feasible: bool,
    /// The backend that scored `cost`.
    pub backend: BackendId,
}

/// Candidate ranking: feasible first, then cheaper, then the smaller
/// grid point — a total, deterministic order.
fn rank(a: &Candidate, b: &Candidate) -> Ordering {
    b.feasible
        .cmp(&a.feasible)
        .then(a.cost.total_cmp(&b.cost))
        .then(a.point.pe_idx.cmp(&b.point.pe_idx))
        .then(a.point.buf_idx.cmp(&b.point.buf_idx))
}

/// The best candidate of a set under [`rank`], if the set is non-empty.
fn best_of(cands: &[Candidate]) -> Option<Candidate> {
    cands.iter().copied().min_by(rank)
}

/// One GEMM recommendation query as the pipeline executor sees it.
#[derive(Debug, Clone, Copy)]
pub struct PipelineQuery {
    /// The workload.
    pub input: DseInput,
    /// Optimization metric.
    pub objective: Objective,
    /// Area budget candidates are checked against.
    pub budget: Budget,
    /// The query's requested cost backend — the default evaluator for
    /// stages without a `backend` override.
    pub backend: BackendId,
}

/// Per-query evaluation context handed to every stage.
#[derive(Debug)]
pub struct StageCtx<'a> {
    /// The workload under recommendation.
    pub input: DseInput,
    /// Optimization metric of the query.
    pub objective: Objective,
    /// Area budget of the query.
    pub budget: Budget,
    /// The query's requested backend (stage `backend` knobs override it).
    pub backend: BackendId,
    /// The shared per-backend engines.
    pub engines: &'a BackendEngines,
    /// Cost-model evaluations spent on this query, per backend
    /// (`[analytic, systolic, cascade]`) — the verify-cycle budget the
    /// bench report accounts.
    pub evals: [u64; 3],
}

impl<'a> StageCtx<'a> {
    fn new(q: &PipelineQuery, engines: &'a BackendEngines) -> Self {
        StageCtx {
            input: q.input,
            objective: q.objective,
            budget: q.budget,
            backend: q.backend,
            engines,
            evals: [0, 0, 0],
        }
    }

    /// The engine a stage scores through: its own override, else the
    /// query's backend.
    pub fn engine(&self, over: Option<BackendId>) -> (&'a Arc<EvalEngine>, BackendId) {
        let id = over.unwrap_or(self.backend);
        (self.engines.get(id), id)
    }

    /// Counts `n` cost-model evaluations against `backend`.
    pub fn count(&mut self, backend: BackendId, n: u64) {
        self.evals[bslot(backend)] += n;
    }
}

/// The batched predictor closure stages call for model inference — the
/// serving layer supplies `Airchitect2::predict_with` over its shard's
/// scratch, keeping this crate free of a model dependency.
pub type PredictFn<'p> = dyn FnMut(&[DseInput]) -> Vec<DesignPoint> + 'p;

/// One transform over a scored candidate set.
///
/// Stages are immutable and shared (`&self`); any randomness comes from
/// per-stage seeds in the configuration, so a pipeline's answers are a
/// pure function of its configuration and the query.
pub trait Stage: fmt::Debug + Send + Sync {
    /// The stage kind (`"predict"` / `"refine"` / `"verify"` /
    /// `"pareto"`).
    fn name(&self) -> &'static str;

    /// Transforms one query's candidate set.
    fn run(
        &self,
        ctx: &mut StageCtx<'_>,
        cands: Vec<Candidate>,
        predict: &mut PredictFn<'_>,
    ) -> Vec<Candidate>;

    /// Batched form over a micro-batch of queries; the default runs
    /// [`Stage::run`] per query. [`PredictorOneShot`] overrides it to
    /// coalesce model inference and per-(backend, objective) engine
    /// scoring across the batch.
    fn run_batch(
        &self,
        ctxs: &mut [StageCtx<'_>],
        sets: Vec<Vec<Candidate>>,
        predict: &mut PredictFn<'_>,
    ) -> Vec<Vec<Candidate>> {
        ctxs.iter_mut()
            .zip(sets)
            .map(|(ctx, cands)| self.run(ctx, cands, predict))
            .collect()
    }
}

/// The learned model's one-shot answer, engine-verified — the historical
/// `recommend_batch` arithmetic as a stage. Its batched form performs
/// one coalesced forward pass for the whole micro-batch and groups
/// engine verification per `(backend, objective)`, which is where that
/// routing now lives (per-row inference is batch-invariant, so the
/// batched and per-query forms answer bit-identically).
#[derive(Debug, Clone)]
pub struct PredictorOneShot {
    /// Verifying backend; `None` follows the query.
    pub backend: Option<BackendId>,
}

impl Stage for PredictorOneShot {
    fn name(&self) -> &'static str {
        "predict"
    }

    fn run(
        &self,
        ctx: &mut StageCtx<'_>,
        _cands: Vec<Candidate>,
        predict: &mut PredictFn<'_>,
    ) -> Vec<Candidate> {
        let point = predict(std::slice::from_ref(&ctx.input))[0];
        let (engine, backend) = ctx.engine(self.backend);
        // identical arithmetic to the grouped path: `score_many_inputs`
        // under an unbounded budget is `score_unchecked_with` per query
        let cost = engine.score_unchecked_with(&ctx.input, point, ctx.objective);
        let feasible = engine.is_feasible_under(point, ctx.budget);
        ctx.count(backend, 1);
        vec![Candidate {
            point,
            cost,
            feasible,
            backend,
        }]
    }

    fn run_batch(
        &self,
        ctxs: &mut [StageCtx<'_>],
        _sets: Vec<Vec<Candidate>>,
        predict: &mut PredictFn<'_>,
    ) -> Vec<Vec<Candidate>> {
        let Some(first) = ctxs.first() else {
            return Vec::new();
        };
        let engines = first.engines;
        let inputs: Vec<DseInput> = ctxs.iter().map(|c| c.input).collect();
        let points = predict(&inputs);
        let mut out: Vec<Vec<Candidate>> = vec![Vec::new(); ctxs.len()];
        // engine verification, grouped by (backend, objective): the one
        // place per-(backend, objective) routing exists
        for backend in BackendId::ALL {
            for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
                let group: Vec<usize> = (0..ctxs.len())
                    .filter(|&i| {
                        self.backend.unwrap_or(ctxs[i].backend) == backend
                            && ctxs[i].objective == objective
                    })
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let engine = engines.get(backend);
                let queries: Vec<(DseInput, DesignPoint)> =
                    group.iter().map(|&i| (ctxs[i].input, points[i])).collect();
                // unbounded: infeasible recommendations still get their
                // true cost reported, with `feasible: false`
                let costs = engine.score_many_inputs(&queries, objective, Budget::Unbounded);
                for (&i, cost) in group.iter().zip(&costs) {
                    let point = points[i];
                    let feasible = engine.is_feasible_under(point, ctxs[i].budget);
                    let cost = cost.expect("unbounded scoring always answers");
                    ctxs[i].count(backend, 1);
                    out[i] = vec![Candidate {
                        point,
                        cost,
                        feasible,
                        backend,
                    }];
                }
            }
        }
        out
    }
}

/// Which searcher a [`LocalRefine`] stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineMethod {
    /// Simulated annealing ([`AnnealingSearcher`]).
    Annealing,
    /// The GAMMA-style genetic algorithm ([`GammaSearcher`]).
    Gamma,
}

impl RefineMethod {
    fn as_str(self) -> &'static str {
        match self {
            RefineMethod::Annealing => "annealing",
            RefineMethod::Gamma => "gamma",
        }
    }
}

/// Local search warm-started at the incoming best candidate, under the
/// query's objective and budget. Appends the search's best feasible
/// point to the candidate set (incoming candidates pass through, so a
/// later verify stage can still compare against the one-shot answer).
#[derive(Debug, Clone)]
pub struct LocalRefine {
    /// Search algorithm.
    pub method: RefineMethod,
    /// Cost-model evaluations the search may spend.
    pub budget_evals: usize,
    /// Searcher seed (answers are deterministic per configuration).
    pub seed: u64,
    /// Scoring backend; `None` follows the query.
    pub backend: Option<BackendId>,
}

impl Stage for LocalRefine {
    fn name(&self) -> &'static str {
        "refine"
    }

    fn run(
        &self,
        ctx: &mut StageCtx<'_>,
        cands: Vec<Candidate>,
        _predict: &mut PredictFn<'_>,
    ) -> Vec<Candidate> {
        let (engine, backend) = ctx.engine(self.backend);
        let start = best_of(&cands).map(|c| c.point);
        let mut sctx = SearchContext::with_goal(engine, ctx.input, ctx.objective, ctx.budget);
        match self.method {
            RefineMethod::Annealing => {
                let mut searcher = AnnealingSearcher::new(self.seed);
                if let Some(p) = start {
                    searcher = searcher.with_start(p);
                }
                searcher.search_in(&mut sctx, self.budget_evals);
            }
            RefineMethod::Gamma => {
                let mut searcher = GammaSearcher::new(self.seed);
                if let Some(p) = start {
                    searcher = searcher.with_start(p);
                }
                searcher.search_in(&mut sctx, self.budget_evals);
            }
        }
        ctx.count(backend, sctx.num_evals() as u64);
        let mut out = cands;
        if let Some((score, point)) = sctx.best() {
            if !out.iter().any(|c| c.point == point && c.backend == backend) {
                out.push(Candidate {
                    point,
                    cost: score,
                    feasible: engine.is_feasible_under(point, ctx.budget),
                    backend,
                });
            }
        } else if !out.iter().any(|c| c.feasible) {
            // nothing feasible sampled and nothing feasible incoming:
            // offer the smallest configuration as a last resort
            let point = DesignPoint {
                pe_idx: 0,
                buf_idx: 0,
            };
            out.push(Candidate {
                point,
                cost: engine.score_unchecked_with(&ctx.input, point, ctx.objective),
                feasible: engine.is_feasible_under(point, ctx.budget),
                backend,
            });
            ctx.count(backend, 1);
        }
        out
    }
}

/// Re-scores the surviving top-k candidates through a second engine —
/// the selective expensive-model (e.g. cycle-accurate systolic)
/// verification leg of the cheap/expensive loop.
#[derive(Debug, Clone)]
pub struct TopKVerify {
    /// Candidates kept and re-scored.
    pub k: usize,
    /// Verifying backend.
    pub backend: BackendId,
}

impl Stage for TopKVerify {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(
        &self,
        ctx: &mut StageCtx<'_>,
        cands: Vec<Candidate>,
        _predict: &mut PredictFn<'_>,
    ) -> Vec<Candidate> {
        let engine = ctx.engines.get(self.backend);
        let mut sorted = cands;
        sorted.sort_by(rank);
        sorted.dedup_by_key(|c| c.point);
        sorted.truncate(self.k);
        for c in &mut sorted {
            c.cost = engine.score_unchecked_with(&ctx.input, c.point, ctx.objective);
            c.feasible = engine.is_feasible_under(c.point, ctx.budget);
            c.backend = self.backend;
        }
        ctx.count(self.backend, sorted.len() as u64);
        sorted
    }
}

/// Keeps the latency/energy non-dominated frontier of the candidate
/// set — multi-objective pruning between stages.
#[derive(Debug, Clone)]
pub struct ParetoFilter {
    /// Scoring backend; `None` follows the query.
    pub backend: Option<BackendId>,
}

impl Stage for ParetoFilter {
    fn name(&self) -> &'static str {
        "pareto"
    }

    fn run(
        &self,
        ctx: &mut StageCtx<'_>,
        cands: Vec<Candidate>,
        _predict: &mut PredictFn<'_>,
    ) -> Vec<Candidate> {
        let (engine, backend) = ctx.engine(self.backend);
        let mut sorted = cands;
        sorted.sort_by(rank);
        sorted.dedup_by_key(|c| c.point);
        let scored: Vec<(Candidate, f64, f64)> = sorted
            .into_iter()
            .map(|c| {
                let lat = engine.score_unchecked_with(&ctx.input, c.point, Objective::Latency);
                let energy = engine.score_unchecked_with(&ctx.input, c.point, Objective::Energy);
                (c, lat, energy)
            })
            .collect();
        ctx.count(backend, 2 * scored.len() as u64);
        let dominated = |i: usize| {
            scored.iter().enumerate().any(|(j, &(_, lj, ej))| {
                j != i
                    && lj <= scored[i].1
                    && ej <= scored[i].2
                    && (lj < scored[i].1 || ej < scored[i].2)
            })
        };
        scored
            .iter()
            .enumerate()
            .filter(|&(i, _)| !dominated(i))
            .map(|(_, &(c, lat, energy))| Candidate {
                point: c.point,
                // frontier members re-ranked under the query objective
                // (same operand order as the engine's EDP)
                cost: match ctx.objective {
                    Objective::Latency => lat,
                    Objective::Energy => energy,
                    Objective::Edp => energy * lat,
                },
                feasible: engine.is_feasible_under(c.point, ctx.budget),
                backend,
            })
            .collect()
    }
}

/// Declarative form of one stage — the serde schema of the `--pipelines`
/// config file. Every knob beyond the `stage` discriminator is
/// defaulted; unknown stage names and unknown knobs are parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StageCfg {
    /// `{"stage": "predict", "backend"?: "analytic"|"systolic"|"cascade"}`
    Predict {
        /// Verifying backend override.
        backend: Option<BackendId>,
    },
    /// `{"stage": "refine", "method"?: "annealing"|"gamma", "budget"?: N,
    /// "seed"?: N, "backend"?: ...}`
    Refine {
        /// Search algorithm (default annealing).
        method: RefineMethod,
        /// Evaluation budget (default 48).
        budget: usize,
        /// Searcher seed (default 17).
        seed: u64,
        /// Scoring backend override.
        backend: Option<BackendId>,
    },
    /// `{"stage": "verify", "k"?: N, "backend"?: ...}` (defaults: k 4,
    /// systolic)
    Verify {
        /// Candidates kept and re-scored (default 4).
        k: usize,
        /// Verifying backend (default systolic).
        backend: BackendId,
    },
    /// `{"stage": "pareto", "backend"?: ...}`
    Pareto {
        /// Scoring backend override.
        backend: Option<BackendId>,
    },
}

/// Rejects a payload object carrying fields outside `known` — the same
/// strict contract (and canonical error shape) as the serving wire's
/// admin surface.
fn deny_unknown_fields(
    content: &serde::Value,
    what: &str,
    known: &[&str],
) -> Result<(), serde::DeError> {
    if let serde::Value::Object(entries) = content {
        for (key, _) in entries {
            if !known.contains(&key.as_str()) {
                return Err(serde::DeError(format!(
                    "unknown field {key:?} in {what} (expected {})",
                    known.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn de_backend(v: &serde::Value) -> Result<Option<BackendId>, serde::DeError> {
    let name: Option<String> = serde::de_field(v, "backend")?;
    match name {
        None => Ok(None),
        Some(n) => BackendId::from_str(&n)
            .map(Some)
            .map_err(|e| serde::DeError(e.to_string())),
    }
}

impl serde::Deserialize for StageCfg {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let stage: String = serde::de_field(v, "stage")?;
        match stage.as_str() {
            "predict" => {
                deny_unknown_fields(v, "predict stage", &["stage", "backend"])?;
                Ok(StageCfg::Predict {
                    backend: de_backend(v)?,
                })
            }
            "refine" => {
                deny_unknown_fields(
                    v,
                    "refine stage",
                    &["stage", "method", "budget", "seed", "backend"],
                )?;
                let method: Option<String> = serde::de_field(v, "method")?;
                let method = match method.as_deref() {
                    None | Some("annealing") => RefineMethod::Annealing,
                    Some("gamma") | Some("gamma-ga") => RefineMethod::Gamma,
                    Some(other) => {
                        return Err(serde::DeError(format!(
                            "unknown refine method {other:?} (expected annealing, gamma)"
                        )))
                    }
                };
                let budget: Option<usize> = serde::de_field(v, "budget")?;
                let seed: Option<u64> = serde::de_field(v, "seed")?;
                Ok(StageCfg::Refine {
                    method,
                    budget: budget.unwrap_or(48),
                    seed: seed.unwrap_or(17),
                    backend: de_backend(v)?,
                })
            }
            "verify" => {
                deny_unknown_fields(v, "verify stage", &["stage", "k", "backend"])?;
                let k: Option<usize> = serde::de_field(v, "k")?;
                Ok(StageCfg::Verify {
                    k: k.unwrap_or(4),
                    backend: de_backend(v)?.unwrap_or(BackendId::Systolic),
                })
            }
            "pareto" => {
                deny_unknown_fields(v, "pareto stage", &["stage", "backend"])?;
                Ok(StageCfg::Pareto {
                    backend: de_backend(v)?,
                })
            }
            other => Err(serde::DeError(format!(
                "unknown stage {other:?} (expected predict, refine, verify, pareto)"
            ))),
        }
    }
}

impl serde::Serialize for StageCfg {
    fn to_value(&self) -> serde::Value {
        let backend_entry = |o: &mut Vec<(String, serde::Value)>, b: Option<BackendId>| {
            if let Some(b) = b {
                o.push(("backend".into(), serde::Value::String(b.as_str().into())));
            }
        };
        let mut o: Vec<(String, serde::Value)> = Vec::new();
        let tag = |s: &str| serde::Value::String(s.into());
        match self {
            StageCfg::Predict { backend } => {
                o.push(("stage".into(), tag("predict")));
                backend_entry(&mut o, *backend);
            }
            StageCfg::Refine {
                method,
                budget,
                seed,
                backend,
            } => {
                o.push(("stage".into(), tag("refine")));
                o.push(("method".into(), tag(method.as_str())));
                o.push(("budget".into(), budget.to_value()));
                o.push(("seed".into(), seed.to_value()));
                backend_entry(&mut o, *backend);
            }
            StageCfg::Verify { k, backend } => {
                o.push(("stage".into(), tag("verify")));
                o.push(("k".into(), k.to_value()));
                o.push(("backend".into(), tag(backend.as_str())));
            }
            StageCfg::Pareto { backend } => {
                o.push(("stage".into(), tag("pareto")));
                backend_entry(&mut o, *backend);
            }
        }
        serde::Value::Object(o)
    }
}

/// A named stage list — one pipeline, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCfg {
    /// Registry name clients select with `"pipeline": "<name>"`.
    pub name: String,
    /// Stages, executed in order; the first must be `predict`.
    pub stages: Vec<StageCfg>,
}

impl serde::Deserialize for PipelineCfg {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        deny_unknown_fields(v, "pipeline", &["name", "stages"])?;
        Ok(PipelineCfg {
            name: serde::de_field(v, "name")?,
            stages: serde::de_field(v, "stages")?,
        })
    }
}

impl serde::Serialize for PipelineCfg {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("stages".into(), self.stages.to_value()),
        ])
    }
}

/// Root of a `--pipelines` config file:
/// `{"pipelines": [{"name": ..., "stages": [...]}, ...]}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelinesFile {
    /// Pipelines to register beside `"default"`.
    pub pipelines: Vec<PipelineCfg>,
}

impl serde::Deserialize for PipelinesFile {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        deny_unknown_fields(v, "pipelines file", &["pipelines"])?;
        Ok(PipelinesFile {
            pipelines: serde::de_field(v, "pipelines")?,
        })
    }
}

impl serde::Serialize for PipelinesFile {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("pipelines".into(), self.pipelines.to_value())])
    }
}

/// A pipeline configuration that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError(pub String);

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pipeline: {}", self.0)
    }
}

impl std::error::Error for PipelineError {}

/// The result a pipeline answers for one query.
#[derive(Debug, Clone)]
pub struct PipelineAnswer {
    /// The winning candidate (feasible-first, lowest cost).
    pub best: Candidate,
    /// Cost-model evaluations spent, per backend
    /// (`[analytic, systolic, cascade]`).
    pub evals: [u64; 3],
}

impl PipelineAnswer {
    /// Evaluations spent on `backend`.
    pub fn backend_evals(&self, backend: BackendId) -> u64 {
        self.evals[bslot(backend)]
    }
}

/// A compiled, validated pipeline.
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineCfg,
    stages: Vec<Box<dyn Stage>>,
}

impl Pipeline {
    /// Compiles and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for an empty name, an empty stage
    /// list, a first stage that is not `predict` (later stages need a
    /// candidate set to transform), or degenerate knobs (`k` or
    /// `budget` of 0).
    pub fn compile(cfg: &PipelineCfg) -> Result<Pipeline, PipelineError> {
        if cfg.name.is_empty() {
            return Err(PipelineError("pipeline name must be non-empty".into()));
        }
        if cfg.stages.is_empty() {
            return Err(PipelineError(format!(
                "pipeline {:?} has no stages",
                cfg.name
            )));
        }
        if !matches!(cfg.stages[0], StageCfg::Predict { .. }) {
            return Err(PipelineError(format!(
                "pipeline {:?} must start with a \"predict\" stage (later stages refine an \
                 existing candidate set)",
                cfg.name
            )));
        }
        let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(cfg.stages.len());
        for stage in &cfg.stages {
            match *stage {
                StageCfg::Predict { backend } => {
                    stages.push(Box::new(PredictorOneShot { backend }))
                }
                StageCfg::Refine {
                    method,
                    budget,
                    seed,
                    backend,
                } => {
                    if budget == 0 {
                        return Err(PipelineError(format!(
                            "pipeline {:?}: refine budget must be ≥ 1",
                            cfg.name
                        )));
                    }
                    stages.push(Box::new(LocalRefine {
                        method,
                        budget_evals: budget,
                        seed,
                        backend,
                    }));
                }
                StageCfg::Verify { k, backend } => {
                    if k == 0 {
                        return Err(PipelineError(format!(
                            "pipeline {:?}: verify k must be ≥ 1",
                            cfg.name
                        )));
                    }
                    stages.push(Box::new(TopKVerify { k, backend }));
                }
                StageCfg::Pareto { backend } => stages.push(Box::new(ParetoFilter { backend })),
            }
        }
        Ok(Pipeline {
            cfg: cfg.clone(),
            stages,
        })
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// The declarative form this pipeline was compiled from.
    pub fn cfg(&self) -> &PipelineCfg {
        &self.cfg
    }

    /// Stage kinds in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Whether this is the degenerate single-stage form whose answers
    /// are bit-identical to the historical one-shot path.
    pub fn is_one_shot(&self) -> bool {
        self.stages.len() == 1
    }

    /// Executes the pipeline over a micro-batch of GEMM queries.
    ///
    /// Multi-stage runs remember the one-shot (first) stage's best and,
    /// at the end, re-score it under the final answer's backend: the
    /// returned best is whichever wins (feasible-first, then cost, ties
    /// to the staged answer), so a staged answer is **never worse than
    /// the one-shot stage's own best** under the query objective.
    pub fn run_batch(
        &self,
        engines: &BackendEngines,
        queries: &[PipelineQuery],
        predict: &mut PredictFn<'_>,
    ) -> Vec<PipelineAnswer> {
        if queries.is_empty() {
            return Vec::new();
        }
        let mut ctxs: Vec<StageCtx<'_>> =
            queries.iter().map(|q| StageCtx::new(q, engines)).collect();
        let mut sets: Vec<Vec<Candidate>> = vec![Vec::new(); queries.len()];
        let mut one_shot: Vec<Option<Candidate>> = vec![None; queries.len()];
        for (si, stage) in self.stages.iter().enumerate() {
            sets = stage.run_batch(&mut ctxs, sets, predict);
            if si == 0 {
                one_shot = sets.iter().map(|cands| best_of(cands)).collect();
            }
        }
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let staged = best_of(&sets[i]).or(one_shot[i]);
                let mut best =
                    staged.expect("the predict stage always emits a candidate per query");
                if self.stages.len() > 1 {
                    if let Some(os) = one_shot[i] {
                        if os.point != best.point {
                            // like-for-like comparison: the one-shot
                            // point under the final answer's backend
                            let engine = engines.get(best.backend);
                            let clamp = Candidate {
                                point: os.point,
                                cost: engine.score_unchecked_with(&q.input, os.point, q.objective),
                                feasible: engine.is_feasible_under(os.point, q.budget),
                                backend: best.backend,
                            };
                            ctxs[i].count(best.backend, 1);
                            if rank(&clamp, &best) == Ordering::Less {
                                best = clamp;
                            }
                        }
                    }
                }
                PipelineAnswer {
                    best,
                    evals: ctxs[i].evals,
                }
            })
            .collect()
    }
}

/// The named pipeline registry. Always contains `"default"` — the
/// degenerate single-stage `predict` pipeline — first.
#[derive(Debug, Clone)]
pub struct PipelineSet {
    list: Vec<Arc<Pipeline>>,
}

impl Default for PipelineSet {
    fn default() -> Self {
        PipelineSet::with(&[]).expect("the built-in default pipeline compiles")
    }
}

impl PipelineSet {
    /// The name every unselected request resolves to.
    pub const DEFAULT: &'static str = "default";

    /// Compiles a registry from configurations, prepending the built-in
    /// `"default"`.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when any configuration fails
    /// [`Pipeline::compile`], redefines `"default"`, or reuses a name.
    pub fn with(cfgs: &[PipelineCfg]) -> Result<PipelineSet, PipelineError> {
        let default_cfg = PipelineCfg {
            name: PipelineSet::DEFAULT.into(),
            stages: vec![StageCfg::Predict { backend: None }],
        };
        let mut list = vec![Arc::new(Pipeline::compile(&default_cfg)?)];
        for cfg in cfgs {
            if cfg.name == PipelineSet::DEFAULT {
                return Err(PipelineError(format!(
                    "pipeline name {:?} is reserved (it is the built-in one-shot pipeline)",
                    PipelineSet::DEFAULT
                )));
            }
            if list.iter().any(|p| p.name() == cfg.name) {
                return Err(PipelineError(format!(
                    "duplicate pipeline name {:?}",
                    cfg.name
                )));
            }
            list.push(Arc::new(Pipeline::compile(cfg)?));
        }
        Ok(PipelineSet { list })
    }

    /// Resolves a request's pipeline selector (`None` → `"default"`).
    pub fn get(&self, name: Option<&str>) -> Option<&Arc<Pipeline>> {
        let name = name.unwrap_or(PipelineSet::DEFAULT);
        self.list.iter().find(|p| p.name() == name)
    }

    /// The built-in one-shot pipeline.
    pub fn default_pipeline(&self) -> &Arc<Pipeline> {
        &self.list[0]
    }

    /// Registered names, registration order (`"default"` first).
    pub fn names(&self) -> Vec<&str> {
        self.list.iter().map(|p| p.name()).collect()
    }

    /// Registered pipelines, registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Pipeline>> {
        self.list.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::DseTask;

    fn engines() -> BackendEngines {
        BackendEngines::new(EvalEngine::shared(DseTask::table_i_default()))
    }

    fn query(objective: Objective) -> PipelineQuery {
        PipelineQuery {
            input: DseInput {
                gemm: ai2_maestro::GemmWorkload::new(48, 400, 300),
                dataflow: ai2_maestro::Dataflow::OutputStationary,
            },
            objective,
            budget: Budget::Edge,
            backend: BackendId::Analytic,
        }
    }

    /// A deterministic stand-in predictor: a mid-grid point.
    fn fake_predict(inputs: &[DseInput]) -> Vec<DesignPoint> {
        inputs
            .iter()
            .map(|_| DesignPoint {
                pe_idx: 20,
                buf_idx: 6,
            })
            .collect()
    }

    fn staged_cfg() -> PipelineCfg {
        PipelineCfg {
            name: "staged".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Refine {
                    method: RefineMethod::Annealing,
                    budget: 32,
                    seed: 5,
                    backend: None,
                },
                StageCfg::Verify {
                    k: 2,
                    backend: BackendId::Systolic,
                },
            ],
        }
    }

    #[test]
    fn default_pipeline_matches_direct_one_shot_arithmetic() {
        let engines = engines();
        let set = PipelineSet::default();
        for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
            let q = query(objective);
            let answers = set
                .default_pipeline()
                .run_batch(&engines, &[q], &mut fake_predict);
            let point = fake_predict(&[q.input])[0];
            let engine = engines.get(BackendId::Analytic);
            let cost = engine.score_unchecked_with(&q.input, point, objective);
            assert_eq!(answers[0].best.point, point);
            assert_eq!(answers[0].best.cost.to_bits(), cost.to_bits());
            assert_eq!(
                answers[0].best.feasible,
                engine.is_feasible_under(point, q.budget)
            );
            assert_eq!(answers[0].best.backend, BackendId::Analytic);
        }
    }

    #[test]
    fn batched_execution_matches_singleton_execution() {
        let engines = engines();
        let set = PipelineSet::with(&[staged_cfg()]).unwrap();
        let pipeline = set.get(Some("staged")).unwrap();
        let queries: Vec<PipelineQuery> = [Objective::Latency, Objective::Energy, Objective::Edp]
            .into_iter()
            .map(query)
            .collect();
        let batched = pipeline.run_batch(&engines, &queries, &mut fake_predict);
        for (q, expect) in queries.iter().zip(&batched) {
            let single = pipeline.run_batch(&engines, std::slice::from_ref(q), &mut fake_predict);
            assert_eq!(single[0].best, expect.best, "batching changed the answer");
        }
    }

    #[test]
    fn staged_answer_never_worse_than_one_shot_under_final_backend() {
        let engines = engines();
        let set = PipelineSet::with(&[staged_cfg()]).unwrap();
        let pipeline = set.get(Some("staged")).unwrap();
        for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
            let q = query(objective);
            let staged = &pipeline.run_batch(&engines, &[q], &mut fake_predict)[0];
            // the one-shot answer, re-scored under the staged answer's
            // backend (what the clamp guarantees against)
            let os_point = fake_predict(&[q.input])[0];
            let engine = engines.get(staged.best.backend);
            let os_cost = engine.score_unchecked_with(&q.input, os_point, objective);
            assert!(staged.best.feasible, "staged answers stay feasible");
            assert!(
                staged.best.cost <= os_cost,
                "{objective:?}: staged {} worse than one-shot {os_cost}",
                staged.best.cost
            );
            // verification spent cycle-accurate evaluations
            assert!(staged.backend_evals(BackendId::Systolic) >= 1);
        }
    }

    #[test]
    fn refine_warm_start_is_seeded_at_the_incoming_best() {
        // a refine stage over a tiny budget must still never regress the
        // incoming best: the warm start is evaluated first
        let engines = engines();
        let cfg = PipelineCfg {
            name: "tiny".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Refine {
                    method: RefineMethod::Gamma,
                    budget: 2,
                    seed: 3,
                    backend: None,
                },
            ],
        };
        let set = PipelineSet::with(&[cfg]).unwrap();
        let pipeline = set.get(Some("tiny")).unwrap();
        let q = query(Objective::Latency);
        let staged = &pipeline.run_batch(&engines, &[q], &mut fake_predict)[0];
        let engine = engines.get(staged.best.backend);
        let os_point = fake_predict(&[q.input])[0];
        let os_cost = engine.score_unchecked_with(&q.input, os_point, Objective::Latency);
        assert!(staged.best.cost <= os_cost);
    }

    #[test]
    fn pareto_filter_keeps_a_non_dominated_frontier() {
        let engines = engines();
        let cfg = PipelineCfg {
            name: "frontier".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Refine {
                    method: RefineMethod::Annealing,
                    budget: 24,
                    seed: 9,
                    backend: None,
                },
                StageCfg::Pareto { backend: None },
            ],
        };
        let set = PipelineSet::with(&[cfg]).unwrap();
        let pipeline = set.get(Some("frontier")).unwrap();
        let q = query(Objective::Edp);
        let answers = pipeline.run_batch(&engines, &[q], &mut fake_predict);
        assert!(answers[0].best.feasible);
        assert!(answers[0].best.cost > 0.0);
    }

    #[test]
    fn compile_validates_shape_and_knobs() {
        let no_predict = PipelineCfg {
            name: "x".into(),
            stages: vec![StageCfg::Pareto { backend: None }],
        };
        let err = Pipeline::compile(&no_predict).unwrap_err();
        assert!(err.to_string().contains("predict"), "{err}");

        let empty = PipelineCfg {
            name: "y".into(),
            stages: vec![],
        };
        assert!(Pipeline::compile(&empty).is_err());

        let zero_k = PipelineCfg {
            name: "z".into(),
            stages: vec![
                StageCfg::Predict { backend: None },
                StageCfg::Verify {
                    k: 0,
                    backend: BackendId::Systolic,
                },
            ],
        };
        let err = Pipeline::compile(&zero_k).unwrap_err();
        assert!(err.to_string().contains("k must be ≥ 1"), "{err}");

        // the registry refuses to shadow the built-in default
        let shadow = PipelineCfg {
            name: "default".into(),
            stages: vec![StageCfg::Predict { backend: None }],
        };
        let err = PipelineSet::with(&[shadow]).unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");

        let dup = staged_cfg();
        let err = PipelineSet::with(&[dup.clone(), dup]).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn cfg_parsing_is_strict_and_defaults_knobs() {
        // defaulted knobs: a bare refine stage gets annealing/48/17
        let cfg: PipelineCfg = serde_json::from_str(
            r#"{"name":"p","stages":[{"stage":"predict"},{"stage":"refine"}]}"#,
        )
        .unwrap();
        assert_eq!(
            cfg.stages[1],
            StageCfg::Refine {
                method: RefineMethod::Annealing,
                budget: 48,
                seed: 17,
                backend: None,
            }
        );
        // a bare verify stage defaults to top-4 through the systolic engine
        let cfg: PipelineCfg = serde_json::from_str(
            r#"{"name":"p","stages":[{"stage":"predict"},{"stage":"verify"}]}"#,
        )
        .unwrap();
        assert_eq!(
            cfg.stages[1],
            StageCfg::Verify {
                k: 4,
                backend: BackendId::Systolic,
            }
        );

        // unknown stage name → canonical parse error
        let err =
            serde_json::from_str::<PipelineCfg>(r#"{"name":"p","stages":[{"stage":"quantize"}]}"#)
                .unwrap_err()
                .to_string();
        assert!(
            err.contains("unknown stage") && err.contains("quantize"),
            "{err}"
        );

        // unknown knob on a known stage → canonical parse error
        let err = serde_json::from_str::<PipelineCfg>(
            r#"{"name":"p","stages":[{"stage":"refine","evals":9}]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("unknown field") && err.contains("evals") && err.contains("refine"),
            "{err}"
        );

        // unknown top-level pipeline field → canonical parse error
        let err = serde_json::from_str::<PipelineCfg>(r#"{"name":"p","stages":[],"prio":1}"#)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unknown field") && err.contains("prio"),
            "{err}"
        );

        // unknown backend name inside a stage
        let err = serde_json::from_str::<PipelineCfg>(
            r#"{"name":"p","stages":[{"stage":"verify","backend":"rtl"}]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("rtl"), "{err}");
    }

    #[test]
    fn cfg_roundtrips_through_the_vendored_codec() {
        let file = PipelinesFile {
            pipelines: vec![
                staged_cfg(),
                PipelineCfg {
                    name: "frontier".into(),
                    stages: vec![
                        StageCfg::Predict {
                            backend: Some(BackendId::Analytic),
                        },
                        StageCfg::Refine {
                            method: RefineMethod::Gamma,
                            budget: 64,
                            seed: 23,
                            backend: Some(BackendId::Analytic),
                        },
                        StageCfg::Pareto { backend: None },
                    ],
                },
            ],
        };
        let line = serde_json::to_string(&file).unwrap();
        let back: PipelinesFile = serde_json::from_str(&line).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn cascade_engine_is_staged_over_the_siblings() {
        let engines = engines();
        let cascade = engines.get(BackendId::Cascade);
        assert_eq!(cascade.backend_id(), BackendId::Cascade);
        // a cascade query leaves its analytic prefilter and systolic
        // escalation in the sibling engines' caches, under their keys
        let q = query(Objective::Latency);
        let ana_before = engines.get(BackendId::Analytic).stats();
        let sys_before = engines.get(BackendId::Systolic).stats();
        cascade.oracle_with(&q.input, q.objective, q.budget);
        let ana_after = engines.get(BackendId::Analytic).stats();
        let sys_after = engines.get(BackendId::Systolic).stats();
        assert!(
            ana_after.point_misses > ana_before.point_misses,
            "the prefilter sweep must land in the analytic sibling"
        );
        assert!(
            sys_after.point_misses > sys_before.point_misses,
            "the escalation must land in the systolic sibling"
        );
        // far fewer systolic evals than the full grid — the whole point
        assert!(sys_after.point_misses - sys_before.point_misses < 768 / 4);
    }

    #[test]
    fn verify_stage_through_the_cascade_engine_compiles_and_answers() {
        let engines = engines();
        let cfg: PipelineCfg = serde_json::from_str(
            r#"{"name":"cv","stages":[{"stage":"predict"},{"stage":"verify","k":3,"backend":"cascade"}]}"#,
        )
        .unwrap();
        assert_eq!(
            cfg.stages[1],
            StageCfg::Verify {
                k: 3,
                backend: BackendId::Cascade,
            }
        );
        let set = PipelineSet::with(&[cfg]).unwrap();
        let pipeline = set.get(Some("cv")).unwrap();
        let q = query(Objective::Latency);
        let answer = &pipeline.run_batch(&engines, &[q], &mut fake_predict)[0];
        assert_eq!(answer.best.backend, BackendId::Cascade);
        assert!(answer.best.cost.is_finite() && answer.best.cost > 0.0);
        assert!(answer.backend_evals(BackendId::Cascade) >= 1);
        // the cascade answer is the cascade engine's own score for that
        // point, bit for bit
        let engine = engines.get(BackendId::Cascade);
        let direct = engine.score_unchecked_with(&q.input, answer.best.point, q.objective);
        assert_eq!(answer.best.cost.to_bits(), direct.to_bits());
    }

    #[test]
    fn registry_resolves_names_and_rejects_unknowns() {
        let set = PipelineSet::with(&[staged_cfg()]).unwrap();
        assert_eq!(set.names(), vec!["default", "staged"]);
        assert!(set.get(None).unwrap().is_one_shot());
        assert_eq!(set.get(Some("default")).unwrap().name(), "default");
        assert_eq!(set.get(Some("staged")).unwrap().name(), "staged");
        assert!(set.get(Some("nope")).is_none());
        assert_eq!(
            set.get(Some("staged")).unwrap().stage_names(),
            vec!["predict", "refine", "verify"]
        );
    }
}
