//! Pluggable cost backends: one interface, many evaluators.
//!
//! AIrchitect v2 learns from an oracle cost model, and the fidelity of
//! that oracle bounds everything downstream. This module abstracts *what
//! answers a cost query* behind the [`CostBackend`] trait so the engine,
//! dataset generation and the serving layer are all indifferent to it:
//!
//! * [`AnalyticBackend`] — the MAESTRO-style closed-form model
//!   ([`ai2_maestro::CostModel`]), the default. Answers through this
//!   backend are **bit-identical** to the direct [`DseTask`] paths
//!   (property-tested in `tests/engine_consistency.rs`).
//! * [`SystolicBackend`] — cycle-accurate latency from the
//!   [`ai2_systolic`] simulator's exact schedule accounting
//!   ([`GemmSimulation::dry_run`], itself pinned bit-for-bit against the
//!   cycle-stepped simulation), with energy derived from the simulated
//!   activity counts priced at the analytic model's per-access constants.
//!
//! Both backends share the task's [`AreaModel`] (silicon area does not
//! depend on how a workload is evaluated), so feasibility under an area
//! budget is backend-independent. Each [`EvalEngine`] owns exactly one
//! backend; caches therefore can never mix labels from different
//! backends — to compare backends, build one engine per backend over the
//! same task (see `EvalEngine::for_backend`).
//!
//! [`DseTask`]: crate::DseTask
//! [`EvalEngine`]: crate::EvalEngine
//! [`AreaModel`]: ai2_maestro::AreaModel
//! [`GemmSimulation::dry_run`]: ai2_systolic::GemmSimulation::dry_run

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use ai2_maestro::{AcceleratorConfig, CostModel};
use ai2_systolic::{ArrayConfig, GemmSimulation};
use ai2_workloads::generator::DseInput;
use serde::{Deserialize, Serialize};

/// Raw, objective-independent cost of one `(input, config)` evaluation:
/// `(latency_cycles, energy_pj)`.
pub type RawCost = (u64, f64);

/// Stable identity of a cost backend — the cache-partitioning key and
/// the value of the wire protocol's optional `"backend"` query field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendId {
    /// The MAESTRO-style analytical model (`ai2-maestro`).
    #[default]
    Analytic,
    /// The cycle-accurate systolic-array schedule (`ai2-systolic`).
    Systolic,
}

impl BackendId {
    /// Every selectable backend.
    pub const ALL: [BackendId; 2] = [BackendId::Analytic, BackendId::Systolic];

    /// The wire spelling (`"analytic"` / `"systolic"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendId::Analytic => "analytic",
            BackendId::Systolic => "systolic",
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown cost backend {:?} (expected \"analytic\" or \"systolic\")",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendId {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "analytic" | "analytical" | "maestro" => Ok(BackendId::Analytic),
            "systolic" | "cycle" | "cycle-accurate" | "sim" => Ok(BackendId::Systolic),
            _ => Err(ParseBackendError(s.to_string())),
        }
    }
}

/// Costs a `(workload, hardware)` pair into latency, energy and area.
///
/// Implementations must be pure functions of their inputs (the engine
/// memoizes and replays results across threads) and cheap enough to
/// sweep the full design-space grid per workload.
pub trait CostBackend: fmt::Debug + Send + Sync {
    /// The backend's stable identity.
    fn id(&self) -> BackendId;

    /// Raw `(latency_cycles, energy_pj)` of running `input` on `hw`.
    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost;

    /// Silicon area of `hw` in mm² (used for budget feasibility).
    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64;
}

/// Builds the backend named by `id`, sharing the analytic model's
/// calibration constants (energy prices, area model) so both backends
/// answer in the same units against the same silicon.
pub fn backend_for(id: BackendId, model: CostModel) -> Arc<dyn CostBackend> {
    match id {
        BackendId::Analytic => Arc::new(AnalyticBackend::new(model)),
        BackendId::Systolic => Arc::new(SystolicBackend::new(model)),
    }
}

/// The MAESTRO-style analytical backend — a thin adapter over
/// [`CostModel::evaluate`], preserving its arithmetic exactly.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticBackend {
    model: CostModel,
}

impl AnalyticBackend {
    /// Wraps an analytic cost model.
    pub fn new(model: CostModel) -> Self {
        AnalyticBackend { model }
    }
}

impl CostBackend for AnalyticBackend {
    fn id(&self) -> BackendId {
        BackendId::Analytic
    }

    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost {
        let report = self.model.evaluate(&input.gemm, input.dataflow, hw);
        (report.latency_cycles, report.energy_pj)
    }

    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.model.area_mm2(hw)
    }
}

/// The cycle-accurate backend: the array-side latency is the exact cycle
/// count of the output-stationary systolic schedule
/// ([`GemmSimulation::dry_run`], bit-identical to the stepped
/// simulation) on the squarest array the PE budget factors into; the
/// end-to-end latency is that schedule under a DRAM-bandwidth roofline
/// (`max(array_cycles, dram_cycles)` — an accelerator is not magically
/// operand-fed, and without the roofline the backend would claim more
/// PEs always help even hopelessly memory-bound layers).
///
/// DRAM traffic follows the simulated loop nest (`i0` outer, `j0`
/// inner) with L2-gated inter-tile reuse, Scale-Sim style: an `A`
/// row-block (`tr × K`) is fetched once per row sweep when it fits its
/// half of the L2 (else refetched per tile), the `B` panel (`K × N`) is
/// fetched once when it fits (else refetched per tile row), and `C`
/// drains exactly once — partial sums live in the PE accumulators, never
/// in memory.
///
/// Fidelity gaps vs. the analytic backend are *by design* — they are
/// what the `fidelity` report measures:
///
/// * the simulated array is output-stationary regardless of the query's
///   dataflow (the dataflow input only affects the analytic backend),
/// * the schedule streams the full `K` reduction per tile (accumulators
///   live in the PEs), so there is no K-tiling and no psum spill
///   traffic,
/// * fill/drain skew is counted exactly per tile rather than
///   approximated per pass, and reuse is all-or-nothing per operand
///   rather than the analytic model's fractional tiling.
///
/// Energy prices the simulated activity with the analytic model's
/// constants: MAC and L1 energy per counted MAC, DRAM energy per
/// fetched element, and leakage over the end-to-end cycle count.
#[derive(Debug, Clone, Copy)]
pub struct SystolicBackend {
    model: CostModel,
}

impl SystolicBackend {
    /// Wraps the analytic model whose energy/area constants price the
    /// simulated activity.
    pub fn new(model: CostModel) -> Self {
        SystolicBackend { model }
    }

    /// The array shape a PE budget maps onto.
    pub fn array_for(hw: &AcceleratorConfig) -> ArrayConfig {
        ArrayConfig::squarest(hw.num_pes as usize)
    }
}

impl CostBackend for SystolicBackend {
    fn id(&self) -> BackendId {
        BackendId::Systolic
    }

    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost {
        let (m, n, k) = (
            input.gemm.m as usize,
            input.gemm.n as usize,
            input.gemm.k as usize,
        );
        let cfg = Self::array_for(hw);
        let report = GemmSimulation::dry_run(&cfg, m, n, k);
        let p = &self.model.params;
        // DRAM traffic of the simulated loop nest (i0 outer, j0 inner)
        // with L2-gated inter-tile reuse: each operand is either resident
        // across its reuse loop or refetched every revisit
        let tiles_m = m.div_ceil(cfg.rows) as u64;
        let tiles_n = n.div_ceil(cfg.cols) as u64;
        let (m64, n64, k64) = (input.gemm.m, input.gemm.n, input.gemm.k);
        let words = (hw.l2_bytes / p.elem_bytes as u64).max(4);
        // the A row-block (tr×K) is reused by every j0 tile of its row
        let a_traffic = if cfg.rows as u64 * k64 <= words / 2 {
            m64 * k64
        } else {
            m64 * k64 * tiles_n
        };
        // the B panel (K×N) is revisited on every i0 iteration
        let b_traffic = if k64 * n64 <= words / 2 {
            k64 * n64
        } else {
            k64 * n64 * tiles_m
        };
        let dram_traffic_elems = a_traffic + b_traffic + m64 * n64;
        let dram_cycles = ((dram_traffic_elems * p.elem_bytes as u64) as f64
            / p.dram_bw_bytes_per_cycle)
            .ceil() as u64;
        let latency_cycles = report.total_cycles.max(dram_cycles);
        let l1_accesses = 3 * report.macs; // two operand reads + one psum update
        let energy_pj = report.macs as f64 * p.e_mac_pj
            + l1_accesses as f64 * p.e_l1_pj
            + dram_traffic_elems as f64 * p.e_dram_pj
            + latency_cycles as f64 * hw.num_pes as f64 * p.leak_pj_per_pe_cycle;
        (latency_cycles, energy_pj)
    }

    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.model.area_mm2(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::{Dataflow, GemmWorkload};

    fn input(m: u64, n: u64, k: u64, df: Dataflow) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: df,
        }
    }

    #[test]
    fn backend_id_parses_and_round_trips() {
        for id in BackendId::ALL {
            assert_eq!(id.as_str().parse::<BackendId>().unwrap(), id);
        }
        assert_eq!(
            "ANALYTIC".parse::<BackendId>().unwrap(),
            BackendId::Analytic
        );
        assert_eq!("cycle".parse::<BackendId>().unwrap(), BackendId::Systolic);
        let err = "rtl".parse::<BackendId>().unwrap_err();
        assert!(err.to_string().contains("rtl"));
        assert_eq!(BackendId::default(), BackendId::Analytic);
    }

    #[test]
    fn analytic_backend_reproduces_cost_model_exactly() {
        let model = CostModel::default();
        let backend = AnalyticBackend::new(model);
        let hw = AcceleratorConfig::new(128, 64 * 1024);
        for df in Dataflow::ALL {
            let inp = input(48, 333, 210, df);
            let (lat, energy) = backend.raw_cost(&inp, &hw);
            let report = model.evaluate(&inp.gemm, df, &hw);
            assert_eq!(lat, report.latency_cycles);
            assert_eq!(energy.to_bits(), report.energy_pj.to_bits());
        }
        assert_eq!(
            backend.area_mm2(&hw).to_bits(),
            model.area_mm2(&hw).to_bits()
        );
    }

    #[test]
    fn systolic_backend_matches_stepped_simulation_latency() {
        let backend = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(16, 4 * 1024);
        let inp = input(7, 9, 5, Dataflow::OutputStationary);
        let (lat, energy) = backend.raw_cost(&inp, &hw);
        let cfg = ArrayConfig::squarest(16);
        let a = vec![1.0f32; 7 * 5];
        let b = vec![1.0f32; 5 * 9];
        let full = GemmSimulation::run(&cfg, &a, &b, 7, 9, 5).report();
        assert_eq!(lat, full.total_cycles);
        assert!(energy.is_finite() && energy > 0.0);
    }

    #[test]
    fn systolic_backend_ignores_dataflow_but_honors_the_buffer() {
        // documented fidelity gap: the simulated schedule is OS-only, so
        // the dataflow input never changes the answer…
        let backend = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(64, 1024);
        let ws = backend.raw_cost(&input(20, 30, 40, Dataflow::WeightStationary), &hw);
        let os = backend.raw_cost(&input(20, 30, 40, Dataflow::OutputStationary), &hw);
        let rs = backend.raw_cost(&input(20, 30, 40, Dataflow::RowStationary), &hw);
        assert_eq!(ws, os);
        assert_eq!(os, rs);
        // …but the L2 size gates inter-tile operand reuse: a starved
        // buffer refetches operands, costing DRAM energy (and latency
        // once the roofline binds)
        let big = input(256, 1500, 900, Dataflow::OutputStationary);
        let starved = backend.raw_cost(&big, &AcceleratorConfig::new(256, 1024));
        let roomy = backend.raw_cost(&big, &AcceleratorConfig::new(256, 2 * 1024 * 1024));
        assert!(
            starved.0 > roomy.0 && starved.1 > roomy.1,
            "starved {starved:?} should cost more than roomy {roomy:?}"
        );
        // area still distinguishes the buffers too
        assert!(
            backend.area_mm2(&AcceleratorConfig::new(256, 2 * 1024 * 1024))
                > backend.area_mm2(&AcceleratorConfig::new(256, 1024))
        );
    }

    #[test]
    fn backends_disagree_on_latency() {
        // the whole point of two backends: they answer differently
        let analytic = AnalyticBackend::new(CostModel::default());
        let systolic = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(128, 64 * 1024);
        let inp = input(64, 500, 300, Dataflow::OutputStationary);
        let a = analytic.raw_cost(&inp, &hw);
        let s = systolic.raw_cost(&inp, &hw);
        assert_ne!(a.0, s.0, "backends should not agree exactly");
    }

    #[test]
    fn backend_for_builds_the_named_backend() {
        for id in BackendId::ALL {
            assert_eq!(backend_for(id, CostModel::default()).id(), id);
        }
    }
}
