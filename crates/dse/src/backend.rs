//! Pluggable cost backends: one interface, many evaluators.
//!
//! AIrchitect v2 learns from an oracle cost model, and the fidelity of
//! that oracle bounds everything downstream. This module abstracts *what
//! answers a cost query* behind the [`CostBackend`] trait so the engine,
//! dataset generation and the serving layer are all indifferent to it:
//!
//! * [`AnalyticBackend`] — the MAESTRO-style closed-form model
//!   ([`ai2_maestro::CostModel`]), the default. Answers through this
//!   backend are **bit-identical** to the direct [`DseTask`] paths
//!   (property-tested in `tests/engine_consistency.rs`).
//! * [`SystolicBackend`] — cycle-accurate latency from the
//!   [`ai2_systolic`] simulator's exact schedule accounting
//!   ([`GemmSimulation::dry_run`], itself pinned bit-for-bit against the
//!   cycle-stepped simulation), with energy derived from the simulated
//!   activity counts priced at the analytic model's per-access constants.
//! * [`CascadeBackend`] — the multi-fidelity staged evaluator (the
//!   Apollo / DiffAxE cheap-model/expensive-model loop): an analytic
//!   prefilter over the full grid, cycle-accurate systolic escalation of
//!   only the top-k frontier plus points where the frontier-calibrated
//!   predictor disagrees with the analytic score beyond a threshold
//!   ([`CascadeConfig`]). Sub-results are memoized in per-stage
//!   [`EvalEngine`]s, so analytic and systolic partial answers are
//!   cached under their own backend keys and never mix.
//!
//! All backends share the task's [`AreaModel`] (silicon area does not
//! depend on how a workload is evaluated), so feasibility under an area
//! budget is backend-independent. Each [`EvalEngine`] owns exactly one
//! backend; caches therefore can never mix labels from different
//! backends — to compare backends, build one engine per backend over the
//! same task (see `EvalEngine::for_backend`).
//!
//! [`DseTask`]: crate::DseTask
//! [`EvalEngine`]: crate::EvalEngine
//! [`AreaModel`]: ai2_maestro::AreaModel
//! [`GemmSimulation::dry_run`]: ai2_systolic::GemmSimulation::dry_run

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ai2_maestro::{AcceleratorConfig, CostModel};
use ai2_systolic::{ArrayConfig, GemmSimulation};
use ai2_workloads::generator::DseInput;
use serde::{Deserialize, Serialize};

use crate::engine::{objective_score, EvalEngine};
use crate::objective::{DseTask, Objective};
use crate::space::DesignPoint;

/// Raw, objective-independent cost of one `(input, config)` evaluation:
/// `(latency_cycles, energy_pj)`.
pub type RawCost = (u64, f64);

/// Stable identity of a cost backend — the cache-partitioning key and
/// the value of the wire protocol's optional `"backend"` query field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendId {
    /// The MAESTRO-style analytical model (`ai2-maestro`).
    #[default]
    Analytic,
    /// The cycle-accurate systolic-array schedule (`ai2-systolic`).
    Systolic,
    /// The multi-fidelity cascade: analytic prefilter, systolic
    /// escalation of the top-k frontier plus disagreement outliers.
    Cascade,
}

impl BackendId {
    /// Every selectable backend.
    pub const ALL: [BackendId; 3] = [BackendId::Analytic, BackendId::Systolic, BackendId::Cascade];

    /// The wire spelling (`"analytic"` / `"systolic"` / `"cascade"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendId::Analytic => "analytic",
            BackendId::Systolic => "systolic",
            BackendId::Cascade => "cascade",
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // the expected-names list is generated from `BackendId::ALL` so
        // that adding a variant can never leave a stale error string
        // anywhere the parse error surfaces (FromStr, the serve wire,
        // pipeline configs all route through this one Display)
        write!(f, "unknown cost backend {:?} (expected ", self.0)?;
        let last = BackendId::ALL.len() - 1;
        for (i, id) in BackendId::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(if i == last { " or " } else { ", " })?;
            }
            write!(f, "{:?}", id.as_str())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendId {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "analytic" | "analytical" | "maestro" => Ok(BackendId::Analytic),
            "systolic" | "cycle" | "cycle-accurate" | "sim" => Ok(BackendId::Systolic),
            "cascade" | "multi-fidelity" | "staged" => Ok(BackendId::Cascade),
            _ => Err(ParseBackendError(s.to_string())),
        }
    }
}

/// Costs a `(workload, hardware)` pair into latency, energy and area.
///
/// Implementations must be pure functions of their inputs (the engine
/// memoizes and replays results across threads) and cheap enough to
/// sweep the full design-space grid per workload.
pub trait CostBackend: fmt::Debug + Send + Sync {
    /// The backend's stable identity.
    fn id(&self) -> BackendId;

    /// Raw `(latency_cycles, energy_pj)` of running `input` on `hw`.
    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost;

    /// Silicon area of `hw` in mm² (used for budget feasibility).
    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64;
}

/// Builds the backend named by `id`, sharing the analytic model's
/// calibration constants (energy prices, area model) so all backends
/// answer in the same units against the same silicon.
///
/// The cascade backend stages its evaluation over a design-space grid;
/// with only a cost model in hand it is built over the Table-I default
/// space. Callers with a concrete task should prefer
/// [`backend_for_task`] so the cascade grid matches the task's space.
pub fn backend_for(id: BackendId, model: CostModel) -> Arc<dyn CostBackend> {
    match id {
        BackendId::Analytic => Arc::new(AnalyticBackend::new(model)),
        BackendId::Systolic => Arc::new(SystolicBackend::new(model)),
        BackendId::Cascade => {
            let mut task = DseTask::table_i_default();
            task.cost_model = model;
            Arc::new(CascadeBackend::new(&task, CascadeConfig::default()))
        }
    }
}

/// [`backend_for`] with the full task in hand: the cascade backend's
/// prefilter/escalation grid is built over `task`'s own design space
/// (the other backends only need the cost-model constants).
pub fn backend_for_task(id: BackendId, task: &DseTask) -> Arc<dyn CostBackend> {
    match id {
        BackendId::Cascade => Arc::new(CascadeBackend::new(task, CascadeConfig::default())),
        _ => backend_for(id, task.cost_model),
    }
}

/// The MAESTRO-style analytical backend — a thin adapter over
/// [`CostModel::evaluate`], preserving its arithmetic exactly.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticBackend {
    model: CostModel,
}

impl AnalyticBackend {
    /// Wraps an analytic cost model.
    pub fn new(model: CostModel) -> Self {
        AnalyticBackend { model }
    }
}

impl CostBackend for AnalyticBackend {
    fn id(&self) -> BackendId {
        BackendId::Analytic
    }

    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost {
        let report = self.model.evaluate(&input.gemm, input.dataflow, hw);
        (report.latency_cycles, report.energy_pj)
    }

    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.model.area_mm2(hw)
    }
}

/// The cycle-accurate backend: the array-side latency is the exact cycle
/// count of the output-stationary systolic schedule
/// ([`GemmSimulation::dry_run`], bit-identical to the stepped
/// simulation) on the squarest array the PE budget factors into; the
/// end-to-end latency is that schedule under a DRAM-bandwidth roofline
/// (`max(array_cycles, dram_cycles)` — an accelerator is not magically
/// operand-fed, and without the roofline the backend would claim more
/// PEs always help even hopelessly memory-bound layers).
///
/// DRAM traffic follows the simulated loop nest (`i0` outer, `j0`
/// inner) with L2-gated inter-tile reuse, Scale-Sim style: an `A`
/// row-block (`tr × K`) is fetched once per row sweep when it fits its
/// half of the L2 (else refetched per tile), the `B` panel (`K × N`) is
/// fetched once when it fits (else refetched per tile row), and `C`
/// drains exactly once — partial sums live in the PE accumulators, never
/// in memory.
///
/// Fidelity gaps vs. the analytic backend are *by design* — they are
/// what the `fidelity` report measures:
///
/// * the simulated array is output-stationary regardless of the query's
///   dataflow (the dataflow input only affects the analytic backend),
/// * the schedule streams the full `K` reduction per tile (accumulators
///   live in the PEs), so there is no K-tiling and no psum spill
///   traffic,
/// * fill/drain skew is counted exactly per tile rather than
///   approximated per pass, and reuse is all-or-nothing per operand
///   rather than the analytic model's fractional tiling.
///
/// Energy prices the simulated activity with the analytic model's
/// constants: MAC and L1 energy per counted MAC, DRAM energy per
/// fetched element, and leakage over the end-to-end cycle count.
#[derive(Debug, Clone, Copy)]
pub struct SystolicBackend {
    model: CostModel,
}

impl SystolicBackend {
    /// Wraps the analytic model whose energy/area constants price the
    /// simulated activity.
    pub fn new(model: CostModel) -> Self {
        SystolicBackend { model }
    }

    /// The array shape a PE budget maps onto.
    pub fn array_for(hw: &AcceleratorConfig) -> ArrayConfig {
        ArrayConfig::squarest(hw.num_pes as usize)
    }
}

impl CostBackend for SystolicBackend {
    fn id(&self) -> BackendId {
        BackendId::Systolic
    }

    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost {
        let (m, n, k) = (
            input.gemm.m as usize,
            input.gemm.n as usize,
            input.gemm.k as usize,
        );
        let cfg = Self::array_for(hw);
        let report = GemmSimulation::dry_run(&cfg, m, n, k);
        let p = &self.model.params;
        // DRAM traffic of the simulated loop nest (i0 outer, j0 inner)
        // with L2-gated inter-tile reuse: each operand is either resident
        // across its reuse loop or refetched every revisit
        let tiles_m = m.div_ceil(cfg.rows) as u64;
        let tiles_n = n.div_ceil(cfg.cols) as u64;
        let (m64, n64, k64) = (input.gemm.m, input.gemm.n, input.gemm.k);
        let words = (hw.l2_bytes / p.elem_bytes as u64).max(4);
        // the A row-block (tr×K) is reused by every j0 tile of its row
        let a_traffic = if cfg.rows as u64 * k64 <= words / 2 {
            m64 * k64
        } else {
            m64 * k64 * tiles_n
        };
        // the B panel (K×N) is revisited on every i0 iteration
        let b_traffic = if k64 * n64 <= words / 2 {
            k64 * n64
        } else {
            k64 * n64 * tiles_m
        };
        let dram_traffic_elems = a_traffic + b_traffic + m64 * n64;
        let dram_cycles = ((dram_traffic_elems * p.elem_bytes as u64) as f64
            / p.dram_bw_bytes_per_cycle)
            .ceil() as u64;
        let latency_cycles = report.total_cycles.max(dram_cycles);
        let l1_accesses = 3 * report.macs; // two operand reads + one psum update
        let energy_pj = report.macs as f64 * p.e_mac_pj
            + l1_accesses as f64 * p.e_l1_pj
            + dram_traffic_elems as f64 * p.e_dram_pj
            + latency_cycles as f64 * hw.num_pes as f64 * p.leak_pj_per_pe_cycle;
        (latency_cycles, energy_pj)
    }

    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.model.area_mm2(hw)
    }
}

/// Knobs of the [`CascadeBackend`]'s escalation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Analytic-frontier size per objective: the top-k analytically
    /// cheapest grid points under each of latency, energy and EDP
    /// (union ≤ 3k points) are escalated to true systolic evaluation.
    pub top_k: usize,
    /// Relative disagreement threshold: a non-frontier point whose
    /// nearest-frontier calibration ratio deviates from the global
    /// (geometric-mean) ratio by more than this fraction is a
    /// candidate for escalation too — local disagreement between the
    /// calibrated predictor and the analytic score is exactly where
    /// the cheap model cannot be trusted.
    pub disagreement: f64,
    /// Hard ceiling on the fraction of grid points escalated to true
    /// systolic evaluation per input. Disagreeing points are escalated
    /// worst-deviation-first until the budget is spent; the rest stay
    /// calibrated predictions. This bounds cascade cost structurally —
    /// no workload can degenerate into a full systolic sweep.
    pub max_escalated: f64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            top_k: 24,
            disagreement: 0.25,
            max_escalated: 0.2,
        }
    }
}

/// One input's staged evaluation: the full grid in systolic-calibrated
/// units, with `escalated` cells carrying true systolic costs.
struct CascadeGrid {
    cells: Box<[RawCost]>,
    escalated: usize,
}

/// The multi-fidelity staged evaluator (Apollo / DiffAxE's
/// cheap-model/expensive-model loop as a [`CostBackend`]):
///
/// 1. **Analytic prefilter** — the full candidate grid is swept through
///    the inner analytic [`EvalEngine`] (memoized under the analytic
///    backend key).
/// 2. **Frontier escalation** — the top-k analytically cheapest points
///    under each objective are re-evaluated by the cycle-accurate
///    systolic engine (memoized under the systolic backend key).
/// 3. **Calibrated prediction** — every other point is predicted from
///    its nearest frontier neighbour's systolic/analytic ratio
///    (`lat ≈ analytic_lat × r_lat`, likewise energy), so the whole
///    grid answers in systolic-like units and an argmin over it lands
///    on truth-verified frontier points. Points whose local calibration
///    disagrees with the global trend beyond
///    [`CascadeConfig::disagreement`] are escalated to true systolic
///    evaluation instead of predicted — worst deviation first, bounded
///    by the [`CascadeConfig::max_escalated`] budget so no workload
///    degenerates into a full systolic sweep.
///
/// Per-input staged grids are memoized (bounded); racing computes are
/// deterministic, so duplicated work returns identical results. The
/// `fidelity` binary measures the policy: cascade regret vs pure
/// systolic at the fraction of the grid escalated.
///
/// Hardware outside the construction task's design space has no
/// frontier to calibrate against and falls back to the plain analytic
/// answer (documented, deterministic).
pub struct CascadeBackend {
    /// Stage-1 engine: the analytic prefilter's memo substrate.
    analytic: Arc<EvalEngine>,
    /// Stage-2 engine: the systolic escalation's memo substrate.
    systolic: Arc<EvalEngine>,
    /// Off-grid fallback (and the shared area model's constants).
    fallback: AnalyticBackend,
    model: CostModel,
    cfg: CascadeConfig,
    /// `(num_pes, l2_bytes)` → flat grid index of the construction
    /// task's space.
    by_config: HashMap<(u32, u64), usize>,
    memo: RwLock<HashMap<DseInput, Arc<CascadeGrid>>>,
    memo_capacity: usize,
    /// True systolic point evaluations spent across all grid builds.
    systolic_evals: AtomicU64,
    /// Staged grids built (memo hits excluded).
    grids_built: AtomicU64,
}

impl fmt::Debug for CascadeBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CascadeBackend")
            .field("cfg", &self.cfg)
            .field(
                "memoized",
                &self.memo.read().expect("cascade memo poisoned").len(),
            )
            .field("grids_built", &self.grids_built.load(Ordering::Relaxed))
            .field(
                "systolic_evals",
                &self.systolic_evals.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl CascadeBackend {
    /// Default number of memoized per-input staged grids (~12 KiB each).
    pub const DEFAULT_MEMO_CAPACITY: usize = 256;

    /// A cascade over `task`'s design space with private per-stage
    /// engines (fresh analytic and systolic caches).
    pub fn new(task: &DseTask, cfg: CascadeConfig) -> CascadeBackend {
        let analytic = Arc::new(EvalEngine::for_backend(task.clone(), BackendId::Analytic));
        let systolic = Arc::new(EvalEngine::for_backend(task.clone(), BackendId::Systolic));
        Self::over(analytic, systolic, cfg)
    }

    /// A cascade staged over existing per-backend engines, so sub-results
    /// land in (and reuse) those engines' own caches — the construction
    /// `BackendEngines` uses to share one analytic and one systolic cache
    /// between direct queries and cascade sub-evaluation.
    ///
    /// # Panics
    ///
    /// Panics when the engines' backends are not analytic/systolic
    /// respectively, or their spaces disagree.
    pub fn over(
        analytic: Arc<EvalEngine>,
        systolic: Arc<EvalEngine>,
        cfg: CascadeConfig,
    ) -> CascadeBackend {
        assert_eq!(
            analytic.backend_id(),
            BackendId::Analytic,
            "cascade stage 1 must be the analytic engine"
        );
        assert_eq!(
            systolic.backend_id(),
            BackendId::Systolic,
            "cascade stage 2 must be the systolic engine"
        );
        assert_eq!(
            analytic.space().num_points(),
            systolic.space().num_points(),
            "cascade stages must share one design space"
        );
        let space = analytic.space();
        let by_config = space
            .iter_points()
            .map(|p| {
                let hw = space.config(p);
                ((hw.num_pes, hw.l2_bytes), space.flat_index(p))
            })
            .collect();
        let model = analytic.task().cost_model;
        CascadeBackend {
            fallback: AnalyticBackend::new(model),
            model,
            cfg,
            by_config,
            memo: RwLock::new(HashMap::new()),
            memo_capacity: Self::DEFAULT_MEMO_CAPACITY,
            systolic_evals: AtomicU64::new(0),
            grids_built: AtomicU64::new(0),
            analytic,
            systolic,
        }
    }

    /// The escalation knobs.
    pub fn config(&self) -> CascadeConfig {
        self.cfg
    }

    /// The per-stage engines (analytic, systolic) — sub-results are
    /// memoized in their caches under their own backend keys.
    pub fn stages(&self) -> (&Arc<EvalEngine>, &Arc<EvalEngine>) {
        (&self.analytic, &self.systolic)
    }

    /// `(escalated, grid_points)` for `input`: how many of the grid's
    /// points the staged evaluation sent to true systolic evaluation —
    /// the "systolic evals per query" the fidelity report gates on.
    pub fn escalation(&self, input: &DseInput) -> (usize, usize) {
        let grid = self.grid(input);
        (grid.escalated, grid.cells.len())
    }

    /// Cumulative `(systolic point evals, staged grids built)` across
    /// this backend's lifetime (memo hits excluded).
    pub fn eval_counters(&self) -> (u64, u64) {
        (
            self.systolic_evals.load(Ordering::Relaxed),
            self.grids_built.load(Ordering::Relaxed),
        )
    }

    /// The memoized staged grid for `input`, computing (and caching,
    /// capacity permitting) on first sight. Racing computes produce
    /// identical grids — every step is deterministic.
    fn grid(&self, input: &DseInput) -> Arc<CascadeGrid> {
        if let Some(g) = self.memo.read().expect("cascade memo poisoned").get(input) {
            return Arc::clone(g);
        }
        let g = Arc::new(self.compute_grid(input));
        let mut memo = self.memo.write().expect("cascade memo poisoned");
        if let Some(existing) = memo.get(input) {
            return Arc::clone(existing);
        }
        if memo.len() < self.memo_capacity {
            memo.insert(*input, Arc::clone(&g));
        }
        g
    }

    /// Prefilter + escalate + calibrate + verify, in deterministic order.
    fn compute_grid(&self, input: &DseInput) -> CascadeGrid {
        let space = self.analytic.space();
        let n = space.num_points();
        let budget = ((n as f64 * self.cfg.max_escalated) as usize).max(1);
        // stage 1: analytic prefilter over the full grid, through the
        // analytic engine's caches
        let ana = self.analytic.raw_grid(input);
        // the seed set: top-k per objective by analytic score (ties to
        // the lower flat index; a BTreeSet keeps later folds ordered)
        // plus a coarse calibration lattice. The lattice matters: the
        // two cost models genuinely disagree on *ordering* in parts of
        // the grid, so calibration anchored only at the analytic
        // frontier would extrapolate its local ratios across regimes
        // it never sampled.
        let k = self.cfg.top_k.clamp(1, n);
        let mut seeds = std::collections::BTreeSet::new();
        for o in [Objective::Latency, Objective::Energy, Objective::Edp] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                objective_score(o, ana[a])
                    .total_cmp(&objective_score(o, ana[b]))
                    .then(a.cmp(&b))
            });
            seeds.extend(order[..k].iter().copied());
        }
        // lattice rows/columns are evenly strided but always include
        // both boundaries: the extreme rows (largest array, largest
        // buffer) are exactly the compute-bound regime where the true
        // optima tend to live, and a lattice that never samples them
        // calibrates that regime from the wrong side of the roofline
        let axis = |len: usize, steps: usize| -> Vec<usize> {
            let mut v: Vec<usize> = (0..len).step_by(len.div_ceil(steps).max(1)).collect();
            if *v.last().expect("len ≥ 1") != len - 1 {
                v.push(len - 1);
            }
            v
        };
        for &pe_idx in &axis(space.num_pe_choices(), 8) {
            for &buf_idx in &axis(space.num_buf_choices(), 4) {
                if seeds.len() >= budget {
                    break;
                }
                seeds.insert(space.flat_index(DesignPoint { pe_idx, buf_idx }));
            }
        }
        // stage 2: true systolic costs on the seeds, through the
        // systolic engine's caches
        let mut sys: HashMap<usize, RawCost> = HashMap::with_capacity(budget);
        for &flat in &seeds {
            let cost = self.systolic.raw_cost_at(input, space.from_flat(flat));
            sys.insert(flat, cost);
        }
        let ratio = |sys: &HashMap<usize, RawCost>, flat: usize| -> (f64, f64) {
            let (al, ae) = ana[flat];
            let (sl, se) = sys[&flat];
            let rl = sl.max(1) as f64 / al.max(1) as f64;
            let re = if ae > 0.0 && se > 0.0 { se / ae } else { 1.0 };
            (rl, re)
        };
        // global calibration: the geometric-mean systolic/analytic ratio
        // over the seeds (iteration over the BTreeSet is sorted, so the
        // fold is deterministic)
        let (mut ln_l, mut ln_e) = (0.0f64, 0.0f64);
        for &flat in &seeds {
            let (rl, re) = ratio(&sys, flat);
            ln_l += rl.ln();
            ln_e += re.ln();
        }
        let g_l = (ln_l / seeds.len() as f64).exp();
        let g_e = (ln_e / seeds.len() as f64).exp();
        let dev = |x: f64| if x >= 1.0 { x - 1.0 } else { 1.0 / x - 1.0 };
        let seeds_v: Vec<usize> = seeds.iter().copied().collect();
        // stage 3: calibrated predictions — each unescalated point takes
        // its nearest seed's local systolic/analytic ratio (Manhattan
        // distance, ties to the lower flat index)
        let mut cells: Vec<RawCost> = Vec::with_capacity(n);
        let mut disagreements: Vec<(f64, usize)> = Vec::new();
        for (flat, &(al, ae)) in ana.iter().enumerate().take(n) {
            if let Some(&c) = sys.get(&flat) {
                cells.push(c);
                continue;
            }
            let p = space.from_flat(flat);
            let nf = seeds_v
                .iter()
                .copied()
                .min_by_key(|&f| {
                    let q = space.from_flat(f);
                    let d = p.pe_idx.abs_diff(q.pe_idx) + p.buf_idx.abs_diff(q.buf_idx);
                    (d, f)
                })
                .expect("top_k ≥ 1 keeps the seed set non-empty");
            let (rl, re) = ratio(&sys, nf);
            let lat = ((al.max(1) as f64) * rl).round().max(1.0) as u64;
            cells.push((lat, ae * re));
            let d = dev(rl / g_l).max(dev(re / g_e));
            if d > self.cfg.disagreement {
                disagreements.push((d, flat));
            }
        }
        // stage 4: verify the winners. An argmin over a half-predicted
        // grid is only trustworthy if the winning cell is truth: per
        // objective, escalate the predicted argmin and repeat until the
        // best cell is systolic-verified (or the budget runs out). Every
        // round either confirms a winner or disproves a pretender, so
        // the final per-objective optima carry true systolic costs.
        let argmin = |cells: &[RawCost], o: Objective| -> usize {
            (0..n)
                .min_by(|&a, &b| {
                    objective_score(o, cells[a])
                        .total_cmp(&objective_score(o, cells[b]))
                        .then(a.cmp(&b))
                })
                .expect("the grid is non-empty")
        };
        for o in [Objective::Latency, Objective::Energy, Objective::Edp] {
            while sys.len() < budget {
                let best = argmin(&cells, o);
                if sys.contains_key(&best) {
                    break;
                }
                let c = self.systolic.raw_cost_at(input, space.from_flat(best));
                sys.insert(best, c);
                cells[best] = c;
            }
        }
        // stage 5: spend whatever budget remains on the worst
        // calibration disagreements — where the local ratio deviates
        // most from the global trend the cheap model cannot be trusted,
        // so those predictions are replaced with truth (worst deviation
        // first, ties to the lower flat index). The ceiling covers
        // seeds + winners + disagreements, so total systolic work per
        // input is bounded regardless of how wrong the cheap model is.
        disagreements.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, flat) in &disagreements {
            if sys.len() >= budget {
                break;
            }
            if sys.contains_key(&flat) {
                continue;
            }
            let c = self.systolic.raw_cost_at(input, space.from_flat(flat));
            sys.insert(flat, c);
            cells[flat] = c;
        }
        let escalated = sys.len();
        self.systolic_evals
            .fetch_add(escalated as u64, Ordering::Relaxed);
        self.grids_built.fetch_add(1, Ordering::Relaxed);
        CascadeGrid {
            cells: cells.into_boxed_slice(),
            escalated,
        }
    }
}

impl CostBackend for CascadeBackend {
    fn id(&self) -> BackendId {
        BackendId::Cascade
    }

    fn raw_cost(&self, input: &DseInput, hw: &AcceleratorConfig) -> RawCost {
        match self.by_config.get(&(hw.num_pes, hw.l2_bytes)) {
            Some(&flat) => self.grid(input).cells[flat],
            // hardware outside the construction space: no frontier to
            // calibrate against — fall back to the analytic answer
            None => self.fallback.raw_cost(input, hw),
        }
    }

    fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.model.area_mm2(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignPoint;
    use ai2_maestro::{Dataflow, GemmWorkload};

    fn input(m: u64, n: u64, k: u64, df: Dataflow) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: df,
        }
    }

    #[test]
    fn backend_id_parses_and_round_trips() {
        for id in BackendId::ALL {
            assert_eq!(id.as_str().parse::<BackendId>().unwrap(), id);
        }
        assert_eq!(
            "ANALYTIC".parse::<BackendId>().unwrap(),
            BackendId::Analytic
        );
        assert_eq!("cycle".parse::<BackendId>().unwrap(), BackendId::Systolic);
        let err = "rtl".parse::<BackendId>().unwrap_err();
        assert!(err.to_string().contains("rtl"));
        assert_eq!(BackendId::default(), BackendId::Analytic);
    }

    #[test]
    fn analytic_backend_reproduces_cost_model_exactly() {
        let model = CostModel::default();
        let backend = AnalyticBackend::new(model);
        let hw = AcceleratorConfig::new(128, 64 * 1024);
        for df in Dataflow::ALL {
            let inp = input(48, 333, 210, df);
            let (lat, energy) = backend.raw_cost(&inp, &hw);
            let report = model.evaluate(&inp.gemm, df, &hw);
            assert_eq!(lat, report.latency_cycles);
            assert_eq!(energy.to_bits(), report.energy_pj.to_bits());
        }
        assert_eq!(
            backend.area_mm2(&hw).to_bits(),
            model.area_mm2(&hw).to_bits()
        );
    }

    #[test]
    fn systolic_backend_matches_stepped_simulation_latency() {
        let backend = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(16, 4 * 1024);
        let inp = input(7, 9, 5, Dataflow::OutputStationary);
        let (lat, energy) = backend.raw_cost(&inp, &hw);
        let cfg = ArrayConfig::squarest(16);
        let a = vec![1.0f32; 7 * 5];
        let b = vec![1.0f32; 5 * 9];
        let full = GemmSimulation::run(&cfg, &a, &b, 7, 9, 5).report();
        assert_eq!(lat, full.total_cycles);
        assert!(energy.is_finite() && energy > 0.0);
    }

    #[test]
    fn systolic_backend_ignores_dataflow_but_honors_the_buffer() {
        // documented fidelity gap: the simulated schedule is OS-only, so
        // the dataflow input never changes the answer…
        let backend = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(64, 1024);
        let ws = backend.raw_cost(&input(20, 30, 40, Dataflow::WeightStationary), &hw);
        let os = backend.raw_cost(&input(20, 30, 40, Dataflow::OutputStationary), &hw);
        let rs = backend.raw_cost(&input(20, 30, 40, Dataflow::RowStationary), &hw);
        assert_eq!(ws, os);
        assert_eq!(os, rs);
        // …but the L2 size gates inter-tile operand reuse: a starved
        // buffer refetches operands, costing DRAM energy (and latency
        // once the roofline binds)
        let big = input(256, 1500, 900, Dataflow::OutputStationary);
        let starved = backend.raw_cost(&big, &AcceleratorConfig::new(256, 1024));
        let roomy = backend.raw_cost(&big, &AcceleratorConfig::new(256, 2 * 1024 * 1024));
        assert!(
            starved.0 > roomy.0 && starved.1 > roomy.1,
            "starved {starved:?} should cost more than roomy {roomy:?}"
        );
        // area still distinguishes the buffers too
        assert!(
            backend.area_mm2(&AcceleratorConfig::new(256, 2 * 1024 * 1024))
                > backend.area_mm2(&AcceleratorConfig::new(256, 1024))
        );
    }

    #[test]
    fn backends_disagree_on_latency() {
        // the whole point of two backends: they answer differently
        let analytic = AnalyticBackend::new(CostModel::default());
        let systolic = SystolicBackend::new(CostModel::default());
        let hw = AcceleratorConfig::new(128, 64 * 1024);
        let inp = input(64, 500, 300, Dataflow::OutputStationary);
        let a = analytic.raw_cost(&inp, &hw);
        let s = systolic.raw_cost(&inp, &hw);
        assert_ne!(a.0, s.0, "backends should not agree exactly");
    }

    #[test]
    fn backend_for_builds_the_named_backend() {
        for id in BackendId::ALL {
            assert_eq!(backend_for(id, CostModel::default()).id(), id);
        }
        let task = DseTask::table_i_default();
        for id in BackendId::ALL {
            assert_eq!(backend_for_task(id, &task).id(), id);
        }
    }

    #[test]
    fn parse_error_names_every_variant() {
        // the expected-names list is generated from BackendId::ALL: a
        // stale hardcoded string would fail the moment a variant lands
        let err = "rtl".parse::<BackendId>().unwrap_err().to_string();
        for id in BackendId::ALL {
            assert!(
                err.contains(&format!("{:?}", id.as_str())),
                "parse error {err:?} does not name {}",
                id.as_str()
            );
        }
        assert!(err.contains("\"cascade\""), "{err}");
    }

    #[test]
    fn cascade_frontier_carries_true_systolic_costs() {
        // the analytically best point is in the frontier by construction,
        // so the cascade must answer it with the exact systolic cost
        let task = DseTask::table_i_default();
        let cascade = CascadeBackend::new(&task, CascadeConfig::default());
        let systolic = SystolicBackend::new(task.cost_model);
        let analytic = AnalyticBackend::new(task.cost_model);
        let inp = input(64, 500, 300, Dataflow::OutputStationary);
        let space = task.space();
        let best = space
            .iter_points()
            .min_by(|&a, &b| {
                let (la, _) = analytic.raw_cost(&inp, &space.config(a));
                let (lb, _) = analytic.raw_cost(&inp, &space.config(b));
                la.cmp(&lb)
                    .then(space.flat_index(a).cmp(&space.flat_index(b)))
            })
            .unwrap();
        let hw = space.config(best);
        let c = cascade.raw_cost(&inp, &hw);
        let s = systolic.raw_cost(&inp, &hw);
        assert_eq!(c.0, s.0);
        assert_eq!(c.1.to_bits(), s.1.to_bits());
    }

    #[test]
    fn cascade_is_deterministic_across_fresh_constructions() {
        // the simtest checker re-derives cascade answers from fresh
        // per-stage oracles; two independent cascades must agree
        // bit-for-bit on every grid point
        let task = DseTask::table_i_default();
        let a = CascadeBackend::new(&task, CascadeConfig::default());
        let b = CascadeBackend::new(&task, CascadeConfig::default());
        let inp = input(48, 333, 210, Dataflow::WeightStationary);
        for p in task.space().iter_points().step_by(13) {
            let hw = task.space().config(p);
            let (la, ea) = a.raw_cost(&inp, &hw);
            let (lb, eb) = b.raw_cost(&inp, &hw);
            assert_eq!(la, lb, "{p:?}");
            assert_eq!(ea.to_bits(), eb.to_bits(), "{p:?}");
        }
        assert_eq!(a.escalation(&inp), b.escalation(&inp));
    }

    #[test]
    fn cascade_escalates_only_a_bounded_fraction() {
        let task = DseTask::table_i_default();
        let cascade = CascadeBackend::new(&task, CascadeConfig::default());
        let n_points = task.space().num_points();
        for (m, n, k) in [(64u64, 500u64, 300u64), (8, 1024, 512), (200, 200, 200)] {
            let inp = input(m, n, k, Dataflow::OutputStationary);
            let (escalated, total) = cascade.escalation(&inp);
            assert_eq!(total, n_points);
            // the whole point of the cascade: far fewer systolic evals
            // than a pure systolic sweep (gated at ≤ 25% in fidelity)
            assert!(
                escalated * 4 <= total,
                "({m},{n},{k}): escalated {escalated}/{total}"
            );
            // …but the frontier itself is always escalated
            assert!(escalated >= cascade.config().top_k);
        }
        let (sys_evals, builds) = cascade.eval_counters();
        assert_eq!(builds, 3);
        assert!(sys_evals > 0);
    }

    #[test]
    fn cascade_memoizes_staged_grids_per_input() {
        let task = DseTask::table_i_default();
        let cascade = CascadeBackend::new(&task, CascadeConfig::default());
        let inp = input(32, 256, 128, Dataflow::OutputStationary);
        let hw = task.space().config(DesignPoint {
            pe_idx: 10,
            buf_idx: 5,
        });
        let first = cascade.raw_cost(&inp, &hw);
        let (_, builds_after_first) = cascade.eval_counters();
        let second = cascade.raw_cost(&inp, &hw);
        assert_eq!(first, second);
        assert_eq!(cascade.eval_counters().1, builds_after_first);
    }

    #[test]
    fn cascade_off_grid_hardware_falls_back_to_analytic() {
        let task = DseTask::table_i_default();
        let cascade = CascadeBackend::new(&task, CascadeConfig::default());
        let analytic = AnalyticBackend::new(task.cost_model);
        // 100 PEs is not a Table-I grid option (multiples of 8 only pair
        // with power-of-two buffers; 3000 B is no buffer option either)
        let hw = AcceleratorConfig::new(100, 3000);
        let c = cascade.raw_cost(&input(20, 30, 40, Dataflow::OutputStationary), &hw);
        let a = analytic.raw_cost(&input(20, 30, 40, Dataflow::OutputStationary), &hw);
        assert_eq!(c.0, a.0);
        assert_eq!(c.1.to_bits(), a.1.to_bits());
        assert_eq!(
            cascade.area_mm2(&hw).to_bits(),
            analytic.area_mm2(&hw).to_bits()
        );
    }

    #[test]
    fn cascade_sub_results_land_in_the_stage_engines_own_caches() {
        // "cached under their own backend keys and never mix": the
        // analytic stage sweeps, the systolic stage answers point
        // queries, and each engine's stats show exactly that
        let task = DseTask::table_i_default();
        let cascade = CascadeBackend::new(&task, CascadeConfig::default());
        let inp = input(48, 300, 200, Dataflow::OutputStationary);
        let (escalated, _) = cascade.escalation(&inp);
        let (ana, sys) = cascade.stages();
        assert_eq!(ana.backend_id(), BackendId::Analytic);
        assert_eq!(sys.backend_id(), BackendId::Systolic);
        let ana_stats = ana.stats();
        let sys_stats = sys.stats();
        // stage 1 swept the full grid analytically…
        assert_eq!(ana_stats.point_misses, 768);
        // …stage 2 only evaluated the escalation set
        assert_eq!(sys_stats.point_misses, escalated as u64);
        assert_eq!(sys_stats.oracle_misses, 0);
    }
}
