//! The unified evaluation substrate: every subsystem's cost queries —
//! oracle labeling, the search baselines, model-level deployment, and
//! the prediction metrics — flow through one concurrency-safe,
//! memoizing [`EvalEngine`].
//!
//! # Why one engine
//!
//! Each layer of the reproduction ultimately asks the MAESTRO-style cost
//! model the same question — *what does design point `p` cost on input
//! `i`?* — and, left alone, each layer answers it independently: the
//! oracle re-sweeps the grid per call, searchers re-score identical
//! `(input, point)` pairs, and deployment replays per-layer costs for
//! every candidate configuration. The engine computes each raw cost at
//! most once and shares it:
//!
//! * **Raw-cost grid cache** — per [`DseInput`], a lazily filled grid of
//!   `(latency, energy)` pairs. Raw costs are objective-independent, so
//!   a single sweep answers *latency*, *energy* and *EDP* queries alike.
//!   Entries are materialised only by the **single-point query** path
//!   ([`EvalEngine::score`] / [`EvalEngine::score_unchecked`]), whose
//!   callers revisit the same input point-by-point; sweep and batch
//!   paths ([`EvalEngine::oracle`], [`EvalEngine::score_grid`],
//!   [`EvalEngine::eval_batch`]) reuse an existing entry but never
//!   create one, so bulk passes over thousands of distinct inputs
//!   cannot exhaust the capacity that repeated-query workloads depend
//!   on.
//! * **Oracle cache** — labeled optima keyed by the full
//!   `(gemm, dataflow, objective, budget)` tuple, so repeated labeling
//!   (dataset generation, metric evaluation, figure binaries) is free
//!   after the first sweep.
//! * **Shared worker pool** — batched APIs ([`EvalEngine::oracle_batch`],
//!   [`EvalEngine::eval_batch`], [`EvalEngine::model_latency_batch`])
//!   fan out over one self-balancing [`WorkPool`] instead of each call
//!   site growing its own thread machinery.
//!
//! Raw costs come from a pluggable [`CostBackend`]
//! (see [`crate::backend`]): the default analytic backend, or the
//! cycle-accurate systolic backend via [`EvalEngine::for_backend`]. Each
//! engine owns exactly one backend, so its caches can never mix labels
//! from different backends. Under the default analytic backend, results
//! are **bit-identical** to the direct [`DseTask`] methods: the engine
//! caches the raw `(latency_cycles, energy_pj)` outputs of
//! [`ai2_maestro::CostModel::evaluate`] and re-derives scores, areas and
//! tie-breaks with exactly the arithmetic `DseTask` uses (property-tested
//! in `tests/engine_consistency.rs`).
//!
//! # Memory bound
//!
//! A full grid entry costs ~20 KiB (768 points). The grid cache holds at
//! most [`EvalEngine::grid_capacity`] entries (default 1024 ≈ 20 MiB);
//! beyond that, queries for new inputs compute transiently without
//! caching — the same cost as the pre-engine code paths. The oracle
//! cache stores only `(point, score, count)` triples and is unbounded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use ai2_workloads::generator::DseInput;
use ai2_workloads::Layer;

use crate::backend::{AnalyticBackend, BackendId, CostBackend, RawCost};
use crate::objective::{Budget, DseTask, Objective, OracleResult};
use crate::pool::WorkPool;
use crate::space::{DesignPoint, DesignSpace};

/// One input's lazily filled cost grid.
struct GridEntry {
    cells: Box<[OnceLock<RawCost>]>,
}

impl GridEntry {
    fn new(num_points: usize) -> GridEntry {
        GridEntry {
            cells: (0..num_points).map(|_| OnceLock::new()).collect(),
        }
    }

    fn filled(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }
}

/// Cache key for labeled optima: the full problem tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OracleKey {
    input: DseInput,
    objective: ObjectiveTag,
    /// `f64::to_bits` of the area limit; `u64::MAX` for unbounded.
    budget_bits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ObjectiveTag {
    Latency,
    Energy,
    Edp,
}

fn objective_tag(o: Objective) -> ObjectiveTag {
    match o {
        Objective::Latency => ObjectiveTag::Latency,
        Objective::Energy => ObjectiveTag::Energy,
        Objective::Edp => ObjectiveTag::Edp,
    }
}

fn budget_bits(b: Budget) -> u64 {
    match b.limit_mm2() {
        Some(limit) => limit.to_bits(),
        None => u64::MAX,
    }
}

/// Scores a raw cost exactly as [`Objective::score`] scores a
/// [`ai2_maestro::CostReport`] (shared with the cascade backend's
/// analytic prefilter, which ranks frontiers with this arithmetic).
pub(crate) fn objective_score(o: Objective, (lat, energy): RawCost) -> f64 {
    match o {
        Objective::Latency => lat as f64,
        Objective::Energy => energy,
        // CostReport::edp() is energy_pj * latency_cycles as f64; keep
        // the operand order so the f64 result is bit-identical.
        Objective::Edp => energy * lat as f64,
    }
}

/// Cache observability counters (monotonic, relaxed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Point evaluations answered from a cached cell.
    pub point_hits: u64,
    /// Point evaluations that ran the cost model.
    pub point_misses: u64,
    /// Oracle queries answered from the oracle cache.
    pub oracle_hits: u64,
    /// Oracle queries that swept the grid.
    pub oracle_misses: u64,
    /// Inputs currently holding a cached grid.
    pub grid_entries: usize,
    /// Grid cells filled across all cached inputs.
    pub cached_points: usize,
    /// Entries in the oracle cache.
    pub oracle_entries: usize,
}

/// The shared, memoizing, parallel cost-evaluation substrate.
///
/// Cheap to share: wrap it in an [`Arc`] (see [`EvalEngine::shared`]) and
/// hand clones to every subsystem. All methods take `&self` and are safe
/// to call concurrently.
pub struct EvalEngine {
    task: DseTask,
    /// The cost backend answering every raw-cost query. One backend per
    /// engine: the grid/oracle caches below are therefore keyed by a
    /// single backend and can never mix labels across backends.
    backend: Arc<dyn CostBackend>,
    /// Area of every grid point under the backend's area model,
    /// flat-indexed.
    areas: Vec<f64>,
    pool: WorkPool,
    grid_capacity: usize,
    grids: RwLock<HashMap<DseInput, Arc<GridEntry>>>,
    oracles: RwLock<HashMap<OracleKey, OracleResult>>,
    point_hits: AtomicU64,
    point_misses: AtomicU64,
    oracle_hits: AtomicU64,
    oracle_misses: AtomicU64,
}

impl std::fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("task", &self.task)
            .field("backend", &self.backend.id())
            .field("threads", &self.pool.threads())
            .field("grid_capacity", &self.grid_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl EvalEngine {
    /// Default number of cached per-input grids (≈ 20 MiB).
    pub const DEFAULT_GRID_CAPACITY: usize = 1024;

    /// An engine over `task` with a machine-sized worker pool and the
    /// default analytic backend (bit-identical to [`DseTask`]).
    pub fn new(task: DseTask) -> EvalEngine {
        Self::with_threads(task, 0)
    }

    /// An engine with an explicit worker count (`0` = available
    /// parallelism) and the default analytic backend.
    pub fn with_threads(task: DseTask, threads: usize) -> EvalEngine {
        let backend = Arc::new(AnalyticBackend::new(task.cost_model));
        Self::with_backend_threads(task, backend, threads)
    }

    /// An engine whose raw costs come from the named [`BackendId`],
    /// built over the task's cost-model constants (see
    /// [`crate::backend::backend_for_task`]). The analytic backend
    /// preserves [`DseTask`] answers bit-for-bit; other backends answer
    /// the same queries from their own evaluator. A cascade engine owns
    /// private per-stage engines over the same task (fresh analytic and
    /// systolic caches) — to stage the cascade over shared sibling
    /// engines instead, build a [`crate::backend::CascadeBackend`] with
    /// [`crate::backend::CascadeBackend::over`] and pass it to
    /// [`EvalEngine::with_backend_threads`].
    pub fn for_backend(task: DseTask, id: BackendId) -> EvalEngine {
        let backend = crate::backend::backend_for_task(id, &task);
        Self::with_backend_threads(task, backend, 0)
    }

    /// An engine over an arbitrary [`CostBackend`] implementation.
    pub fn with_backend_threads(
        task: DseTask,
        backend: Arc<dyn CostBackend>,
        threads: usize,
    ) -> EvalEngine {
        let areas = task
            .space()
            .iter_points()
            .map(|p| backend.area_mm2(&task.space().config(p)))
            .collect();
        EvalEngine {
            backend,
            areas,
            pool: WorkPool::new(threads),
            grid_capacity: Self::DEFAULT_GRID_CAPACITY,
            grids: RwLock::new(HashMap::new()),
            oracles: RwLock::new(HashMap::new()),
            point_hits: AtomicU64::new(0),
            point_misses: AtomicU64::new(0),
            oracle_hits: AtomicU64::new(0),
            oracle_misses: AtomicU64::new(0),
            task,
        }
    }

    /// Overrides the grid-cache capacity (entries; `0` disables grid
    /// caching entirely).
    pub fn with_grid_capacity(mut self, capacity: usize) -> EvalEngine {
        self.grid_capacity = capacity;
        self
    }

    /// Convenience: a shared engine ready to hand to multiple subsystems.
    pub fn shared(task: DseTask) -> Arc<EvalEngine> {
        Arc::new(EvalEngine::new(task))
    }

    /// The default experimental engine (Table I space, latency objective,
    /// edge budget).
    pub fn table_i_default() -> EvalEngine {
        EvalEngine::new(DseTask::table_i_default())
    }

    /// The task under evaluation.
    pub fn task(&self) -> &DseTask {
        &self.task
    }

    /// The identity of the cost backend answering this engine's queries.
    pub fn backend_id(&self) -> BackendId {
        self.backend.id()
    }

    /// The output design space.
    pub fn space(&self) -> &DesignSpace {
        self.task.space()
    }

    /// The shared worker pool (for callers fanning out their own work).
    pub fn pool(&self) -> &WorkPool {
        &self.pool
    }

    /// Precomputed silicon area of a design point (mm²).
    pub fn area_mm2(&self, p: DesignPoint) -> f64 {
        self.areas[self.space().flat_index(p)]
    }

    /// Whether `p` fits the task's area budget (identical to
    /// [`DseTask::is_feasible`]).
    pub fn is_feasible(&self, p: DesignPoint) -> bool {
        self.feasible_under(p, self.task.budget)
    }

    /// Whether `p` fits an arbitrary area budget — the serving path
    /// answers queries under per-request budgets without rebuilding the
    /// engine.
    pub fn is_feasible_under(&self, p: DesignPoint, budget: Budget) -> bool {
        self.feasible_under(p, budget)
    }

    fn feasible_under(&self, p: DesignPoint, budget: Budget) -> bool {
        match budget.limit_mm2() {
            None => true,
            Some(limit) => self.areas[self.space().flat_index(p)] <= limit,
        }
    }

    /// Cache counters and sizes.
    pub fn stats(&self) -> EngineStats {
        let grids = self.grids.read().expect("grid cache poisoned");
        let cached_points = grids.values().map(|e| e.filled()).sum();
        EngineStats {
            point_hits: self.point_hits.load(Ordering::Relaxed),
            point_misses: self.point_misses.load(Ordering::Relaxed),
            oracle_hits: self.oracle_hits.load(Ordering::Relaxed),
            oracle_misses: self.oracle_misses.load(Ordering::Relaxed),
            grid_entries: grids.len(),
            cached_points,
            oracle_entries: self.oracles.read().expect("oracle cache poisoned").len(),
        }
    }

    /// Drops every cached grid and oracle label (counters are kept).
    pub fn clear_cache(&self) {
        self.grids.write().expect("grid cache poisoned").clear();
        self.oracles.write().expect("oracle cache poisoned").clear();
    }

    // ----------------------------------------------------------------
    // raw-cost plumbing

    fn compute_raw(&self, input: &DseInput, flat: usize) -> RawCost {
        let p = self.space().from_flat(flat);
        self.backend.raw_cost(input, &self.space().config(p))
    }

    /// The cached grid for `input`, if one already exists.
    fn existing_grid(&self, input: &DseInput) -> Option<Arc<GridEntry>> {
        self.grids
            .read()
            .expect("grid cache poisoned")
            .get(input)
            .map(Arc::clone)
    }

    /// The cached grid for `input`, inserting one if capacity allows.
    ///
    /// Only the **point-query** path materialises grids: point-wise
    /// reuse (searchers hammering one workload) is what a retained grid
    /// pays for. Sweep paths (`oracle`, `score_grid`) reuse a grid when
    /// present but never create one — a batch of thousands of distinct
    /// labeling inputs must not evict-by-filling the capacity that the
    /// repeated-query workloads rely on.
    fn grid_for_points(&self, input: &DseInput) -> Option<Arc<GridEntry>> {
        if let Some(entry) = self.existing_grid(input) {
            return Some(entry);
        }
        if self.grid_capacity == 0 {
            return None;
        }
        let mut grids = self.grids.write().expect("grid cache poisoned");
        if let Some(entry) = grids.get(input) {
            return Some(Arc::clone(entry));
        }
        if grids.len() >= self.grid_capacity {
            return None;
        }
        let entry = Arc::new(GridEntry::new(self.space().num_points()));
        grids.insert(*input, Arc::clone(&entry));
        Some(entry)
    }

    /// Raw cost of one `(input, point)` pair, memoized when a grid slot
    /// is available.
    fn raw_cost(&self, input: &DseInput, flat: usize) -> RawCost {
        match self.grid_for_points(input) {
            Some(entry) => {
                // `computed` disambiguates the race where two threads
                // both see an empty cell: only the thread whose closure
                // ran counts a miss, so the hit/miss stats stay exact.
                let mut computed = false;
                let cost = *entry.cells[flat].get_or_init(|| {
                    computed = true;
                    self.compute_raw(input, flat)
                });
                if computed {
                    self.point_misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.point_hits.fetch_add(1, Ordering::Relaxed);
                }
                cost
            }
            None => {
                self.point_misses.fetch_add(1, Ordering::Relaxed);
                self.compute_raw(input, flat)
            }
        }
    }

    /// All raw costs for `input` (the full grid sweep), parallelized
    /// over the pool when possible. Reuses (and fills) an existing grid
    /// entry but never creates one — see [`EvalEngine::grid_for_points`].
    ///
    /// Counts point hits/misses like every other entry point: a sweep
    /// over a warm grid is `n` hits, a cold sweep is `n` misses, and a
    /// partially warm grid splits exactly (cascade escalation decisions
    /// read these counters, so the sweep path may not under-report).
    fn full_raw_costs(&self, input: &DseInput) -> Vec<RawCost> {
        let n = self.space().num_points();
        match self.existing_grid(input) {
            Some(entry) => {
                let misses = AtomicU64::new(0);
                self.pool.run(n, |flat| {
                    let mut computed = false;
                    entry.cells[flat].get_or_init(|| {
                        computed = true;
                        self.compute_raw(input, flat)
                    });
                    if computed {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                });
                let misses = misses.load(Ordering::Relaxed);
                self.point_misses.fetch_add(misses, Ordering::Relaxed);
                self.point_hits
                    .fetch_add(n as u64 - misses, Ordering::Relaxed);
                entry
                    .cells
                    .iter()
                    .map(|c| *c.get().expect("filled by the sweep above"))
                    .collect()
            }
            None => {
                self.point_misses.fetch_add(n as u64, Ordering::Relaxed);
                self.pool.map(n, |flat| self.compute_raw(input, flat))
            }
        }
    }

    // ----------------------------------------------------------------
    // point queries (bit-identical to DseTask)

    /// Evaluates one design point; `None` if it violates the budget
    /// (identical to [`DseTask::score`]).
    pub fn score(&self, input: &DseInput, p: DesignPoint) -> Option<f64> {
        if !self.is_feasible(p) {
            return None;
        }
        Some(self.score_unchecked(input, p))
    }

    /// Evaluates one design point ignoring the budget (identical to
    /// [`DseTask::score_unchecked`]).
    pub fn score_unchecked(&self, input: &DseInput, p: DesignPoint) -> f64 {
        let raw = self.raw_cost(input, self.space().flat_index(p));
        objective_score(self.task.objective, raw)
    }

    /// Raw cost that reuses (and fills) an existing grid entry but never
    /// materialises one — for batches of mostly-distinct one-shot
    /// queries, which would otherwise pin the bounded grid capacity with
    /// single-use entries.
    fn raw_cost_transient(&self, input: &DseInput, flat: usize) -> RawCost {
        match self.existing_grid(input) {
            Some(entry) => {
                let mut computed = false;
                let cost = *entry.cells[flat].get_or_init(|| {
                    computed = true;
                    self.compute_raw(input, flat)
                });
                if computed {
                    self.point_misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.point_hits.fetch_add(1, Ordering::Relaxed);
                }
                cost
            }
            None => {
                self.point_misses.fetch_add(1, Ordering::Relaxed);
                self.compute_raw(input, flat)
            }
        }
    }

    /// Scores a batch of `(input, point)` queries in parallel
    /// (`None` marks budget violations).
    ///
    /// Intended for batches of **distinct** one-shot queries (e.g. the
    /// metric pass scoring one predicted point per test sample): results
    /// reuse any cached grids but do not create new ones. Workloads that
    /// revisit the same input repeatedly should use [`EvalEngine::score`],
    /// which materialises a grid for point-wise reuse.
    pub fn eval_batch(&self, queries: &[(DseInput, DesignPoint)]) -> Vec<Option<f64>> {
        self.pool.map(queries.len(), |i| {
            let (input, p) = &queries[i];
            if !self.is_feasible(*p) {
                return None;
            }
            let raw = self.raw_cost_transient(input, self.space().flat_index(*p));
            Some(objective_score(self.task.objective, raw))
        })
    }

    /// Budget-ignoring variant of a single transient query (used by
    /// metric code to penalize infeasible predictions without caching
    /// one-shot inputs).
    pub fn score_unchecked_transient(&self, input: &DseInput, p: DesignPoint) -> f64 {
        let raw = self.raw_cost_transient(input, self.space().flat_index(p));
        objective_score(self.task.objective, raw)
    }

    /// Raw `(latency_cycles, energy_pj)` of one point, transiently
    /// cached (reuses an existing grid entry, never materialises one) —
    /// the cascade backend's escalation path, which memoizes its own
    /// staged grids and must not pin this engine's grid capacity.
    pub fn raw_cost_at(&self, input: &DseInput, p: DesignPoint) -> RawCost {
        self.raw_cost_transient(input, self.space().flat_index(p))
    }

    /// The full raw-cost grid for `input`, flat-indexed — the cascade
    /// backend's analytic prefilter. Sweep-path caching semantics
    /// (reuses a grid entry when present, never creates one) and exact
    /// hit/miss accounting, like [`EvalEngine::score_grid`].
    pub fn raw_grid(&self, input: &DseInput) -> Vec<RawCost> {
        self.full_raw_costs(input)
    }

    /// Evaluates one design point under an overridden objective and
    /// budget (`None` on budget violation). The raw-cost cache is
    /// objective-independent, so answering the same input under latency
    /// *and* energy costs one cost-model run, not two. Transient: reuses
    /// cached grids but never materialises one.
    pub fn score_with(
        &self,
        input: &DseInput,
        p: DesignPoint,
        objective: Objective,
        budget: Budget,
    ) -> Option<f64> {
        if !self.feasible_under(p, budget) {
            return None;
        }
        Some(self.score_unchecked_with(input, p, objective))
    }

    /// Budget-ignoring variant of [`EvalEngine::score_with`].
    pub fn score_unchecked_with(
        &self,
        input: &DseInput,
        p: DesignPoint,
        objective: Objective,
    ) -> f64 {
        let raw = self.raw_cost_transient(input, self.space().flat_index(p));
        objective_score(objective, raw)
    }

    /// Scores a batch of `(input, point)` queries in parallel under an
    /// overridden objective and budget (`None` marks budget violations)
    /// — the batch entry point of the serving layer, which coalesces
    /// queued requests sharing an objective/budget into one fan-out over
    /// the pool. Identical caching behaviour to
    /// [`EvalEngine::eval_batch`].
    pub fn score_many_inputs(
        &self,
        queries: &[(DseInput, DesignPoint)],
        objective: Objective,
        budget: Budget,
    ) -> Vec<Option<f64>> {
        self.pool.map(queries.len(), |i| {
            let (input, p) = &queries[i];
            self.score_with(input, *p, objective, budget)
        })
    }

    // ----------------------------------------------------------------
    // grid queries

    /// Scores every grid point (NaN for infeasible), flat-indexed
    /// (identical to [`DseTask::score_grid`]).
    pub fn score_grid(&self, input: &DseInput) -> Vec<f64> {
        let raw = self.full_raw_costs(input);
        self.space()
            .iter_points()
            .map(|p| {
                if self.is_feasible(p) {
                    objective_score(self.task.objective, raw[self.space().flat_index(p)])
                } else {
                    f64::NAN
                }
            })
            .collect()
    }

    /// The exact grid optimum for `input` under the task's objective and
    /// budget (identical to [`DseTask::oracle`], memoized).
    pub fn oracle(&self, input: &DseInput) -> OracleResult {
        self.oracle_with(input, self.task.objective, self.task.budget)
    }

    /// The exact grid optimum under an overridden objective and budget —
    /// the raw-cost cache is shared across objectives, so sweeping one
    /// input under latency *and* energy costs one grid sweep, not two.
    ///
    /// # Panics
    ///
    /// Panics if `budget` admits no design point (same invariant as
    /// [`DseTask::oracle`]).
    pub fn oracle_with(
        &self,
        input: &DseInput,
        objective: Objective,
        budget: Budget,
    ) -> OracleResult {
        let key = OracleKey {
            input: *input,
            objective: objective_tag(objective),
            budget_bits: budget_bits(budget),
        };
        if let Some(res) = self
            .oracles
            .read()
            .expect("oracle cache poisoned")
            .get(&key)
        {
            self.oracle_hits.fetch_add(1, Ordering::Relaxed);
            return *res;
        }
        self.oracle_misses.fetch_add(1, Ordering::Relaxed);
        let raw = self.full_raw_costs(input);

        // Replicates DseTask::oracle exactly: same iteration order, same
        // score/area comparisons, same tie-breaks.
        let mut best: Option<(f64, f64, DesignPoint)> = None;
        let mut feasible = 0usize;
        for p in self.space().iter_points() {
            if !self.feasible_under(p, budget) {
                continue;
            }
            let flat = self.space().flat_index(p);
            let score = objective_score(objective, raw[flat]);
            feasible += 1;
            let area = self.areas[flat];
            let better = match &best {
                None => true,
                Some((bs, ba, _)) => score < *bs || (score == *bs && area < *ba),
            };
            if better {
                best = Some((score, area, p));
            }
        }
        let (best_score, _, best_point) =
            best.expect("DseTask invariant: at least one feasible point");
        let res = OracleResult {
            best_point,
            best_score,
            feasible_points: feasible,
        };
        self.oracles
            .write()
            .expect("oracle cache poisoned")
            .insert(key, res);
        res
    }

    /// Labels a batch of inputs in parallel over the pool.
    pub fn oracle_batch(&self, inputs: &[DseInput]) -> Vec<OracleResult> {
        self.pool.map(inputs.len(), |i| self.oracle(&inputs[i]))
    }

    // ----------------------------------------------------------------
    // model-level deployment costs

    /// Model-level latency of running every layer (with repetition
    /// counts) on hardware `point`, letting each layer use its best
    /// dataflow — the cost kernel of the paper's §III-E deployment
    /// methods. Ignores the budget, like
    /// [`DseTask::score_unchecked`]; deployment methods filter candidate
    /// points for feasibility before calling this.
    pub fn model_latency(&self, layers: &[Layer], point: DesignPoint) -> f64 {
        self.model_cost_with(layers, point, self.task.objective)
    }

    /// [`EvalEngine::model_latency`] for many candidate points at once,
    /// fanned out over the pool.
    pub fn model_latency_batch(&self, layers: &[Layer], points: &[DesignPoint]) -> Vec<f64> {
        self.model_cost_batch_with(layers, points, self.task.objective)
    }

    /// Model-level cost under an overridden objective: the same
    /// per-layer best-dataflow fold as [`EvalEngine::model_latency`]
    /// (which it is bit-identical to when `objective` equals the task's),
    /// but scoring each layer under `objective` — so a serving query can
    /// ask for an energy- or EDP-optimal whole-model deployment without
    /// rebuilding the engine. Layer grids are materialised (point-query
    /// path): deployment sweeps revisit the same few layer inputs for
    /// every candidate point, which is exactly what a retained grid pays
    /// for.
    pub fn model_cost_with(&self, layers: &[Layer], point: DesignPoint, o: Objective) -> f64 {
        let flat = self.space().flat_index(point);
        layers
            .iter()
            .map(|layer| {
                let best_df = ai2_maestro::Dataflow::ALL
                    .iter()
                    .map(|&df| {
                        let input = DseInput {
                            gemm: layer.gemm,
                            dataflow: df,
                        };
                        objective_score(o, self.raw_cost(&input, flat))
                    })
                    .fold(f64::INFINITY, f64::min);
                best_df * layer.count as f64
            })
            .sum()
    }

    /// [`EvalEngine::model_cost_with`] for many candidate points at
    /// once, fanned out over the pool.
    pub fn model_cost_batch_with(
        &self,
        layers: &[Layer],
        points: &[DesignPoint],
        o: Objective,
    ) -> Vec<f64> {
        self.pool
            .map(points.len(), |i| self.model_cost_with(layers, points[i], o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_maestro::{Dataflow, GemmWorkload};

    fn input(m: u64, n: u64, k: u64, df: Dataflow) -> DseInput {
        DseInput {
            gemm: GemmWorkload::new(m, n, k),
            dataflow: df,
        }
    }

    #[test]
    fn engine_matches_task_point_queries() {
        let task = DseTask::table_i_default();
        let engine = EvalEngine::new(task.clone());
        let inp = input(48, 300, 200, Dataflow::OutputStationary);
        for p in task.space().iter_points().step_by(17) {
            assert_eq!(engine.is_feasible(p), task.is_feasible(p));
            assert_eq!(engine.score(&inp, p), task.score(&inp, p));
            assert_eq!(
                engine.score_unchecked(&inp, p).to_bits(),
                task.score_unchecked(&inp, p).to_bits()
            );
        }
    }

    #[test]
    fn engine_matches_task_oracle_and_grid() {
        let task = DseTask::table_i_default();
        let engine = EvalEngine::new(task.clone());
        let inp = input(64, 700, 450, Dataflow::RowStationary);
        assert_eq!(engine.oracle(&inp), task.oracle(&inp));
        let (eg, tg) = (engine.score_grid(&inp), task.score_grid(&inp));
        assert_eq!(eg.len(), tg.len());
        for (a, b) in eg.iter().zip(&tg) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn repeated_oracle_hits_the_cache() {
        let engine = EvalEngine::table_i_default();
        let inp = input(32, 128, 64, Dataflow::WeightStationary);
        let first = engine.oracle(&inp);
        let stats_after_first = engine.stats();
        let second = engine.oracle(&inp);
        let stats_after_second = engine.stats();
        assert_eq!(first, second);
        assert_eq!(stats_after_first.oracle_misses, 1);
        assert_eq!(
            stats_after_second.oracle_hits,
            stats_after_first.oracle_hits + 1
        );
        assert_eq!(
            stats_after_second.point_misses,
            stats_after_first.point_misses
        );
    }

    #[test]
    fn oracle_with_shares_raw_costs_across_objectives() {
        let engine = EvalEngine::table_i_default();
        let inp = input(40, 220, 90, Dataflow::OutputStationary);
        // a point query materialises the grid entry (sweep paths alone
        // never create one — see grid_for_points)
        engine.score_unchecked(
            &inp,
            DesignPoint {
                pe_idx: 4,
                buf_idx: 4,
            },
        );
        assert_eq!(engine.stats().grid_entries, 1);
        // the oracle sweep fills the existing grid…
        engine.oracle(&inp);
        assert_eq!(engine.stats().cached_points, 768);
        // …and a different objective over the same input folds the same
        // cached raw costs instead of re-running the cost model
        let misses_before = engine.stats().point_misses;
        engine.oracle_with(&inp, Objective::Energy, Budget::Edge);
        assert_eq!(engine.stats().point_misses, misses_before);
        assert_eq!(engine.stats().grid_entries, 1);
    }

    #[test]
    fn eval_batch_does_not_populate_the_grid_cache() {
        // a metric pass scores one (input, point) pair per sample; those
        // single-use inputs must not pin the bounded grid capacity
        let engine = EvalEngine::table_i_default();
        let queries: Vec<(DseInput, DesignPoint)> = (1..30u64)
            .map(|i| {
                (
                    input(i, i * 5, i * 3, Dataflow::OutputStationary),
                    DesignPoint {
                        pe_idx: 2,
                        buf_idx: 2,
                    },
                )
            })
            .collect();
        let scores = engine.eval_batch(&queries);
        assert!(scores.iter().all(|s| s.is_some()));
        assert_eq!(engine.stats().grid_entries, 0);
        // …but it reuses a grid when one already exists
        engine.score(&queries[0].0, queries[0].1);
        assert_eq!(engine.stats().grid_entries, 1);
        let hits_before = engine.stats().point_hits;
        engine.eval_batch(&queries[..1]);
        assert_eq!(engine.stats().point_hits, hits_before + 1);
    }

    #[test]
    fn sweeps_do_not_populate_the_grid_cache() {
        // labeling many distinct inputs (dataset generation) must not
        // fill the bounded grid cache that point-query workloads rely on
        let engine = EvalEngine::table_i_default();
        for i in 1..20u64 {
            engine.oracle(&input(i * 3, i * 17, i * 11, Dataflow::WeightStationary));
        }
        let stats = engine.stats();
        assert_eq!(stats.grid_entries, 0);
        assert_eq!(stats.oracle_entries, 19);
    }

    #[test]
    fn zero_capacity_engine_still_answers_correctly() {
        let task = DseTask::table_i_default();
        let engine = EvalEngine::new(task.clone()).with_grid_capacity(0);
        let inp = input(16, 64, 32, Dataflow::WeightStationary);
        assert_eq!(engine.oracle(&inp), task.oracle(&inp));
        assert_eq!(engine.stats().grid_entries, 0);
    }

    #[test]
    fn score_with_overrides_match_a_rebuilt_task() {
        // score_with(objective, budget) must agree bit-for-bit with an
        // engine/task built natively for that objective and budget
        let engine = EvalEngine::table_i_default();
        let mut alt = DseTask::table_i_default();
        alt.objective = Objective::Energy;
        alt.budget = Budget::Cloud;
        let inp = input(96, 410, 170, Dataflow::RowStationary);
        for p in engine.space().iter_points().step_by(31) {
            let via_override = engine.score_with(&inp, p, Objective::Energy, Budget::Cloud);
            let direct = alt.score(&inp, p);
            match (via_override, direct) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                other => panic!("feasibility disagreement at {p:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn score_many_inputs_matches_scalar_score_with() {
        let engine = EvalEngine::table_i_default();
        let queries: Vec<(DseInput, DesignPoint)> = (1..20u64)
            .map(|i| {
                (
                    input(i * 7, i * 31, i * 13, Dataflow::from_index(i as usize % 3)),
                    DesignPoint {
                        pe_idx: (i as usize * 5) % 64,
                        buf_idx: (i as usize * 3) % 12,
                    },
                )
            })
            .collect();
        for (objective, budget) in [
            (Objective::Latency, Budget::Edge),
            (Objective::Edp, Budget::Unbounded),
        ] {
            let batch = engine.score_many_inputs(&queries, objective, budget);
            for ((inp, p), s) in queries.iter().zip(&batch) {
                assert_eq!(*s, engine.score_with(inp, *p, objective, budget));
            }
        }
        // like eval_batch, the batch path must not pin grid capacity
        assert_eq!(engine.stats().grid_entries, 0);
    }

    #[test]
    fn model_cost_with_task_objective_is_model_latency() {
        let engine = EvalEngine::table_i_default();
        let layers = vec![
            Layer::new("a", GemmWorkload::new(64, 256, 128)),
            Layer::repeated("b", GemmWorkload::new(8, 1024, 512), 3),
        ];
        let points: Vec<DesignPoint> = (0..6)
            .map(|i| DesignPoint {
                pe_idx: i * 9,
                buf_idx: i,
            })
            .collect();
        let lat = engine.model_latency_batch(&layers, &points);
        let gen = engine.model_cost_batch_with(&layers, &points, Objective::Latency);
        for (a, b) in lat.iter().zip(&gen) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // a different objective must actually change the ranking input
        let energy = engine.model_cost_batch_with(&layers, &points, Objective::Energy);
        assert!(lat.iter().zip(&energy).any(|(a, b)| a != b));
    }

    #[test]
    fn every_entry_point_counts_point_hits_and_misses() {
        // stats accounting must be consistent across ALL entry points:
        // transient point queries, materialising point queries, and the
        // sweep path (which historically counted nothing) — cascade
        // escalation decisions read these counters
        let engine = EvalEngine::table_i_default();
        let inp = input(36, 180, 96, Dataflow::OutputStationary);
        let p = DesignPoint {
            pe_idx: 7,
            buf_idx: 3,
        };
        // transient single point on a cold cache: one miss, no grid
        engine.score_unchecked_transient(&inp, p);
        let s = engine.stats();
        assert_eq!((s.point_hits, s.point_misses), (0, 1));
        assert_eq!(s.grid_entries, 0);
        // a cold full sweep counts every point as a miss
        engine.score_grid(&inp);
        let s = engine.stats();
        assert_eq!((s.point_hits, s.point_misses), (0, 769));
        // materialise the grid (the transient sweep cached nothing, so
        // this point recomputes: one more miss)…
        engine.score(&inp, p);
        let s = engine.stats();
        assert_eq!((s.point_hits, s.point_misses), (0, 770));
        assert_eq!(s.grid_entries, 1);
        // …a sweep over the partially warm grid splits exactly…
        engine.score_grid(&inp);
        let s = engine.stats();
        assert_eq!((s.point_hits, s.point_misses), (1, 770 + 767));
        // …and a sweep over the fully warm grid is pure hits
        engine.score_grid(&inp);
        let s = engine.stats();
        assert_eq!((s.point_hits, s.point_misses), (769, 1537));
        // raw accessors share the same accounting
        engine.raw_cost_at(&inp, p);
        assert_eq!(engine.stats().point_hits, 770);
        engine.raw_grid(&inp);
        assert_eq!(engine.stats().point_hits, 770 + 768);
        // clear_cache drops grids and oracle labels but keeps the
        // monotonic counters (documented contract)
        let before = engine.stats();
        engine.clear_cache();
        let after = engine.stats();
        assert_eq!(after.point_hits, before.point_hits);
        assert_eq!(after.point_misses, before.point_misses);
        assert_eq!(after.grid_entries, 0);
        assert_eq!(after.cached_points, 0);
        assert_eq!(after.oracle_entries, 0);
    }

    #[test]
    fn per_engine_backends_keep_caches_apart() {
        // same task, two engines, two backends: answers differ, and each
        // engine's caches only ever see its own backend's labels
        let task = DseTask::table_i_default();
        let analytic = EvalEngine::for_backend(task.clone(), BackendId::Analytic);
        let systolic = EvalEngine::for_backend(task.clone(), BackendId::Systolic);
        assert_eq!(analytic.backend_id(), BackendId::Analytic);
        assert_eq!(systolic.backend_id(), BackendId::Systolic);
        let inp = input(48, 300, 200, Dataflow::OutputStationary);
        let a = analytic.oracle(&inp);
        let s = systolic.oracle(&inp);
        assert_eq!(a, task.oracle(&inp), "analytic backend must match DseTask");
        assert_ne!(
            a.best_score.to_bits(),
            s.best_score.to_bits(),
            "backends should answer differently"
        );
        // feasibility is backend-independent (shared area model)
        assert_eq!(a.feasible_points, s.feasible_points);
        // warming one engine leaves the other's caches untouched
        let before = analytic.stats();
        systolic.oracle(&inp);
        systolic.score(
            &inp,
            DesignPoint {
                pe_idx: 3,
                buf_idx: 3,
            },
        );
        assert_eq!(analytic.stats(), before);
        assert_eq!(systolic.stats().oracle_hits, 1);
    }

    #[test]
    fn systolic_engine_oracle_is_the_grid_argmin() {
        // the systolic engine must be self-consistent: its memoized
        // oracle equals the argmin over its own score grid
        let engine = EvalEngine::for_backend(DseTask::table_i_default(), BackendId::Systolic);
        let inp = input(40, 220, 90, Dataflow::WeightStationary);
        let res = engine.oracle(&inp);
        let grid = engine.score_grid(&inp);
        let best = grid
            .iter()
            .filter(|s| !s.is_nan())
            .fold(f64::INFINITY, |a, &b| a.min(b));
        assert_eq!(res.best_score.to_bits(), best.to_bits());
        assert_eq!(
            res.best_score.to_bits(),
            grid[engine.space().flat_index(res.best_point)].to_bits()
        );
    }

    #[test]
    fn batch_apis_match_scalar_apis() {
        let engine = EvalEngine::table_i_default();
        let inputs: Vec<DseInput> = (1..6)
            .map(|i| input(i * 13, i * 40, i * 21, Dataflow::from_index(i as usize % 3)))
            .collect();
        let batch = engine.oracle_batch(&inputs);
        for (inp, res) in inputs.iter().zip(&batch) {
            assert_eq!(*res, engine.oracle(inp));
        }
        let queries: Vec<(DseInput, DesignPoint)> = inputs
            .iter()
            .map(|&i| {
                (
                    i,
                    DesignPoint {
                        pe_idx: 5,
                        buf_idx: 4,
                    },
                )
            })
            .collect();
        let scores = engine.eval_batch(&queries);
        for ((inp, p), s) in queries.iter().zip(&scores) {
            assert_eq!(*s, engine.score(inp, *p));
        }
    }
}
