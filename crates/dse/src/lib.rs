//! The DSE problem definition, search-based baselines and dataset
//! generation for the AIrchitect v2 reproduction.
//!
//! * [`DesignSpace`] — the Table I output grid: 64 PE counts × 12 L2
//!   buffer sizes (768 hardware configurations).
//! * [`DseTask`] — objective (latency / energy / EDP), area budget, and
//!   the exhaustive [`DseTask::oracle`] that labels the dataset with the
//!   exact per-layer optimum (the quantity ConfuciuX approximates in the
//!   paper's pipeline).
//! * [`engine`] — the unified [`EvalEngine`]: every cost query of every
//!   subsystem (oracle labeling, searchers, deployment, metrics) flows
//!   through one concurrency-safe, memoizing, parallel substrate.
//! * [`backend`] — pluggable [`CostBackend`]s behind the engine: the
//!   analytic MAESTRO-style model (default, bit-identical to
//!   [`DseTask`]) and the cycle-accurate systolic-schedule backend.
//! * [`search`] — the iterative searchers of the paper's Fig. 1 and §V:
//!   random search, simulated annealing, a GAMMA-style genetic algorithm,
//!   a ConfuciuX-style REINFORCE + GA fine-tune, and Bayesian
//!   optimization over a Gaussian-process surrogate (also reused for the
//!   latent-space search of Fig. 8a).
//! * [`dataset`] — parallel generation of `(DSE input, optimal design)`
//!   samples, the 80/20 split, and JSON persistence.
//! * [`stats`] — the long-tail label statistics of the paper's Fig. 3b.
//!
//! # Example: label one workload
//!
//! ```
//! use ai2_dse::{DesignSpace, DseTask};
//! use ai2_workloads::generator::DseInput;
//! use ai2_maestro::{Dataflow, GemmWorkload};
//!
//! let task = DseTask::table_i_default();
//! let input = DseInput {
//!     gemm: GemmWorkload::new(64, 512, 256),
//!     dataflow: Dataflow::WeightStationary,
//! };
//! let label = task.oracle(&input);
//! let hw = task.space().config(label.best_point);
//! assert!(hw.num_pes >= 8);
//! ```

mod dataset;
mod objective;
mod space;

pub mod backend;
pub mod engine;
pub mod pipeline;
pub mod pool;
pub mod search;
pub mod stats;

pub use backend::{
    AnalyticBackend, BackendId, CascadeBackend, CascadeConfig, CostBackend, ParseBackendError,
    SystolicBackend,
};
pub use dataset::{DatasetError, DseDataset, DseSample, GenerateConfig};
pub use engine::{EngineStats, EvalEngine};
pub use objective::{Budget, DseTask, Objective, OracleResult};
pub use pipeline::{
    BackendEngines, Candidate, Pipeline, PipelineAnswer, PipelineCfg, PipelineError, PipelineQuery,
    PipelineSet, PipelinesFile, Stage, StageCfg,
};
pub use pool::WorkPool;
pub use space::{DesignPoint, DesignSpace};
