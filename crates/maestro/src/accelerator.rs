//! Hardware configuration and area model.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One point in the hardware design space: a PE array plus a shared L2
/// scratchpad. The per-PE L1 is fixed, following the ConfuciuX search
/// assumptions the paper adopts (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of processing elements (MAC units with private L1).
    pub num_pes: u32,
    /// Shared L2 scratchpad capacity in bytes.
    pub l2_bytes: u64,
    /// Private L1 per PE in bytes (fixed at 512 in the DSE task).
    pub l1_bytes_per_pe: u32,
}

impl AcceleratorConfig {
    /// Default fixed L1 size per PE (bytes), per the ConfuciuX setup.
    pub const DEFAULT_L1_BYTES: u32 = 512;

    /// Creates a configuration with the fixed default L1.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` or `l2_bytes` is zero.
    pub fn new(num_pes: u32, l2_bytes: u64) -> Self {
        assert!(num_pes > 0, "AcceleratorConfig: zero PEs");
        assert!(l2_bytes > 0, "AcceleratorConfig: zero L2");
        AcceleratorConfig {
            num_pes,
            l2_bytes,
            l1_bytes_per_pe: Self::DEFAULT_L1_BYTES,
        }
    }

    /// L2 capacity in KiB (rounded down).
    pub fn l2_kib(&self) -> u64 {
        self.l2_bytes / 1024
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}pe/{}KiB", self.num_pes, self.l2_kib())
    }
}

/// Silicon-area model used for the resource-budget constraint.
///
/// Constants are loosely calibrated to a 28 nm systolic-array accelerator:
/// a MAC PE with its 512 B register file costs far less than a KiB of SRAM
/// macro plus its periphery. What matters for the DSE task is the *ratio*
/// (PEs and buffers compete for the same budget), not the absolute mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// mm² per PE (MAC + control + fixed L1).
    pub mm2_per_pe: f64,
    /// mm² per KiB of shared L2 SRAM.
    pub mm2_per_l2_kib: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            mm2_per_pe: 6.0e-4,
            mm2_per_l2_kib: 3.9e-4,
        }
    }
}

impl AreaModel {
    /// Total area of a configuration in mm².
    pub fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.mm2_per_pe * hw.num_pes as f64 + self.mm2_per_l2_kib * hw.l2_kib() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let hw = AcceleratorConfig::new(64, 128 * 1024);
        assert_eq!(hw.l2_kib(), 128);
        assert_eq!(hw.l1_bytes_per_pe, 512);
        assert_eq!(hw.to_string(), "64pe/128KiB");
    }

    #[test]
    #[should_panic(expected = "zero PEs")]
    fn zero_pes_rejected() {
        AcceleratorConfig::new(0, 1024);
    }

    #[test]
    fn area_is_monotone_in_both_resources() {
        let a = AreaModel::default();
        let base = a.area_mm2(&AcceleratorConfig::new(64, 64 * 1024));
        assert!(a.area_mm2(&AcceleratorConfig::new(128, 64 * 1024)) > base);
        assert!(a.area_mm2(&AcceleratorConfig::new(64, 128 * 1024)) > base);
    }

    #[test]
    fn max_grid_config_area_is_near_one_mm2() {
        // the largest Table-I config should land near 1 mm² so that budget
        // presets (0.25 / 0.55 mm²) cut through the middle of the grid
        let a = AreaModel::default();
        let max = a.area_mm2(&AcceleratorConfig::new(512, 2048 * 1024));
        assert!(max > 0.9 && max < 1.4, "max area {max}");
    }
}
