//! The analytical latency / energy / traffic model.

use serde::{Deserialize, Serialize};

use crate::{AcceleratorConfig, AreaModel, Dataflow, GemmWorkload};

/// Calibration constants of the cost model.
///
/// Defaults approximate a 1 GHz accelerator with fp16 operands, a 16 GB/s
/// DRAM interface and SRAM energy ratios in line with published
/// per-access numbers (DRAM ≈ two orders of magnitude above a MAC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Bytes per operand element (2 = fp16).
    pub elem_bytes: u32,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bw_bytes_per_cycle: f64,
    /// L2→L1 bandwidth in elements per cycle.
    pub l2_bw_elems_per_cycle: f64,
    /// Effective operand reuse provided by the fixed per-PE L1 (how many
    /// MACs each L2-fetched element feeds on average).
    pub l1_reuse: f64,
    /// Energy per MAC (pJ).
    pub e_mac_pj: f64,
    /// Energy per L1 access (pJ).
    pub e_l1_pj: f64,
    /// Energy per L2 access (pJ).
    pub e_l2_pj: f64,
    /// Energy per DRAM access (pJ per element).
    pub e_dram_pj: f64,
    /// Leakage per PE per cycle (pJ).
    pub leak_pj_per_pe_cycle: f64,
    /// Area model used for budget checks.
    pub area: AreaModel,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            elem_bytes: 2,
            dram_bw_bytes_per_cycle: 16.0,
            l2_bw_elems_per_cycle: 64.0,
            l1_reuse: 64.0,
            e_mac_pj: 1.0,
            e_l1_pj: 1.0,
            e_l2_pj: 6.0,
            e_dram_pj: 100.0,
            leak_pj_per_pe_cycle: 0.01,
            area: AreaModel {
                mm2_per_pe: 6.0e-4,
                mm2_per_l2_kib: 3.9e-4,
            },
        }
    }
}

/// The tile shape the model selects for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Tile extent along `M`.
    pub m_t: u64,
    /// Tile extent along `N`.
    pub n_t: u64,
    /// Tile extent along `K`.
    pub k_t: u64,
    /// Number of tiles along `M`.
    pub tiles_m: u64,
    /// Number of tiles along `N`.
    pub tiles_n: u64,
    /// Number of tiles along `K`.
    pub tiles_k: u64,
}

impl Tiling {
    /// Total number of tile passes through the array.
    pub fn passes(&self) -> u64 {
        self.tiles_m * self.tiles_n * self.tiles_k
    }
}

/// Full output of one cost evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// End-to-end latency in cycles.
    pub latency_cycles: u64,
    /// Cycles spent if purely compute-bound.
    pub compute_cycles: u64,
    /// Cycles to move the DRAM traffic at full bandwidth.
    pub dram_cycles: u64,
    /// Cycles to move the L2 traffic at full bandwidth.
    pub l2_cycles: u64,
    /// Array fill/drain overhead cycles.
    pub fill_drain_cycles: u64,
    /// DRAM traffic in elements.
    pub dram_traffic_elems: u64,
    /// L2→L1 traffic in elements.
    pub l2_traffic_elems: u64,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// MAC-utilization of the PE array in `[0, 1]`.
    pub utilization: f64,
    /// Chosen tiling.
    pub tiling: Tiling,
}

impl CostReport {
    /// Energy-delay product (pJ · cycles), one of ConfuciuX's objectives.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_cycles as f64
    }
}

/// The analytical cost model. Cheap enough to evaluate the full 768-point
/// hardware grid per workload (the oracle of the DSE dataset) millions of
/// times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Calibration constants.
    pub params: CostParams,
}

impl CostModel {
    /// Creates a model with explicit parameters.
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// Area of `hw` under this model's area constants (mm²).
    pub fn area_mm2(&self, hw: &AcceleratorConfig) -> f64 {
        self.params.area.area_mm2(hw)
    }

    /// Estimates latency, energy and traffic for running `wl` with
    /// dataflow `df` on hardware `hw`.
    pub fn evaluate(&self, wl: &GemmWorkload, df: Dataflow, hw: &AcceleratorConfig) -> CostReport {
        let p = &self.params;
        let (m, n, k) = (wl.m, wl.n, wl.k);
        let macs = wl.macs();
        let words = (hw.l2_bytes / p.elem_bytes as u64).max(4);
        let stationary_budget = (words / 2).max(1);
        let stream_budget = (words / 4).max(1);
        let pes = hw.num_pes as u64;

        // --- tiling: stationary operand gets half the L2, each streaming
        //     operand a quarter (double-buffered halves are folded into
        //     the budget constants).
        let (tiling, spatial_a, spatial_b) = match df {
            Dataflow::WeightStationary => {
                // stationary B (k×n)
                let (k_t, n_t) = fit_pair(k, n, stationary_budget);
                let m_t = (stream_budget / k_t.max(n_t)).clamp(1, m);
                let t = make_tiling(m, n, k, m_t, n_t, k_t);
                // spatial unroll over (k_t, n_t)
                let (a_s, b_s) = spatial_factorize(pes, k_t, n_t);
                (t, a_s, b_s)
            }
            Dataflow::OutputStationary => {
                // stationary C (m×n)
                let (m_t, n_t) = fit_pair(m, n, stationary_budget);
                let k_t = (stream_budget / m_t.max(n_t)).clamp(1, k);
                let t = make_tiling(m, n, k, m_t, n_t, k_t);
                let (a_s, b_s) = spatial_factorize(pes, m_t, n_t);
                (t, a_s, b_s)
            }
            Dataflow::RowStationary => {
                // stationary A (m×k)
                let (m_t, k_t) = fit_pair(m, k, stationary_budget);
                let n_t = (stream_budget / m_t.max(k_t)).clamp(1, n);
                let t = make_tiling(m, n, k, m_t, n_t, k_t);
                let (a_s, b_s) = spatial_factorize(pes, m_t, k_t);
                (t, a_s, b_s)
            }
        };

        // --- DRAM traffic in elements.
        let (tm, tn, tk) = (tiling.tiles_m, tiling.tiles_n, tiling.tiles_k);
        // partial sums spill when K is split: one write per pass plus a
        // read-modify-write for every revisit.
        let psum_traffic = m * n * (2 * tk - 1);
        let dram_traffic_elems = match df {
            // B loaded once; A reloaded per N-tile; C partials per K-tile.
            Dataflow::WeightStationary => k * n + m * k * tn + psum_traffic,
            // C written once; A reloaded per N-tile; B reloaded per M-tile.
            Dataflow::OutputStationary => m * n + m * k * tn + k * n * tm,
            // A loaded once; B reloaded per M-tile; C partials per K-tile.
            Dataflow::RowStationary => m * k + k * n * tm + psum_traffic,
        };

        // --- compute cycles with spatial quantization.
        let per_tile_steps = match df {
            Dataflow::WeightStationary => {
                tiling.k_t.div_ceil(spatial_a) * tiling.n_t.div_ceil(spatial_b) * tiling.m_t
            }
            Dataflow::OutputStationary => {
                tiling.m_t.div_ceil(spatial_a) * tiling.n_t.div_ceil(spatial_b) * tiling.k_t
            }
            Dataflow::RowStationary => {
                // spatial reduction over k_s needs an adder-tree pass
                let tree = (64 - spatial_b.leading_zeros()) as u64; // ≈ log2 + 1
                tiling.m_t.div_ceil(spatial_a) * tiling.k_t.div_ceil(spatial_b) * tiling.n_t + tree
            }
        };
        let compute_cycles = per_tile_steps * tiling.passes();

        // RS pays an extra accumulate for spatially-split K.
        // (already folded into per-tile steps via the adder tree)

        // --- memory cycles.
        let dram_cycles = ((dram_traffic_elems * p.elem_bytes as u64) as f64
            / p.dram_bw_bytes_per_cycle)
            .ceil() as u64;
        let l2_traffic_elems = ((2 * macs) as f64 / p.l1_reuse).ceil() as u64 + m * n;
        let l2_cycles = (l2_traffic_elems as f64 / p.l2_bw_elems_per_cycle).ceil() as u64;

        // --- fill/drain: the array refills its pipeline once per pass.
        let used = spatial_a * spatial_b;
        let array_dim = (used as f64).sqrt().ceil() as u64;
        let fill_drain_cycles = tiling.passes() * 2 * array_dim;

        let latency_cycles = compute_cycles.max(dram_cycles).max(l2_cycles) + fill_drain_cycles;

        let utilization = (macs as f64 / (latency_cycles as f64 * pes as f64)).min(1.0);

        // --- energy.
        let l1_accesses = 3 * macs; // two operand reads + one psum update
        let energy_pj = macs as f64 * p.e_mac_pj
            + l1_accesses as f64 * p.e_l1_pj
            + l2_traffic_elems as f64 * p.e_l2_pj
            + dram_traffic_elems as f64 * p.e_dram_pj
            + latency_cycles as f64 * pes as f64 * p.leak_pj_per_pe_cycle;

        CostReport {
            latency_cycles,
            compute_cycles,
            dram_cycles,
            l2_cycles,
            fill_drain_cycles,
            dram_traffic_elems,
            l2_traffic_elems,
            energy_pj,
            utilization,
            tiling,
        }
    }
}

/// Picks `(a_t, b_t)` with `a_t·b_t ≤ budget`, near-square but clamped to
/// the problem extents, preferring to cover the full extent of the
/// smaller dimension.
fn fit_pair(a: u64, b: u64, budget: u64) -> (u64, u64) {
    if a * b <= budget {
        return (a, b);
    }
    let side = (budget as f64).sqrt() as u64;
    let mut a_t = a.min(side.max(1));
    let b_t = b.min((budget / a_t).max(1));
    // re-expand a_t if b was the binding constraint
    a_t = a.min((budget / b_t).max(1));
    (a_t.max(1), b_t.max(1))
}

fn make_tiling(m: u64, n: u64, k: u64, m_t: u64, n_t: u64, k_t: u64) -> Tiling {
    Tiling {
        m_t,
        n_t,
        k_t,
        tiles_m: m.div_ceil(m_t),
        tiles_n: n.div_ceil(n_t),
        tiles_k: k.div_ceil(k_t),
    }
}

/// Splits `pes` across two spatial dimensions bounded by `a` and `b`,
/// maximizing occupied PEs. Candidates are powers of two plus the exact
/// bounds, which keeps evaluation cheap while retaining the utilization
/// staircase that makes the landscape non-convex.
fn spatial_factorize(pes: u64, a: u64, b: u64) -> (u64, u64) {
    let mut best = (1u64, 1u64);
    let mut best_used = 0u64;
    let mut consider = |x: u64| {
        if x == 0 || x > pes {
            return;
        }
        let x = x.min(a);
        let y = (pes / x).min(b).max(1);
        let used = x * y;
        // prefer more PEs used; tie-break toward balance
        if used > best_used || (used == best_used && x.abs_diff(y) < best.0.abs_diff(best.1)) {
            best = (x, y);
            best_used = used;
        }
    };
    let mut x = 1u64;
    while x <= pes {
        consider(x);
        x = x.saturating_mul(2);
    }
    consider(a.min(pes));
    if b > 0 {
        consider((pes / b.min(pes)).max(1));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    fn hw(pes: u32, l2_kib: u64) -> AcceleratorConfig {
        AcceleratorConfig::new(pes, l2_kib * 1024)
    }

    #[test]
    fn latency_positive_and_finite() {
        let m = model();
        let r = m.evaluate(
            &GemmWorkload::new(64, 256, 128),
            Dataflow::WeightStationary,
            &hw(64, 64),
        );
        assert!(r.latency_cycles > 0);
        assert!(r.energy_pj.is_finite() && r.energy_pj > 0.0);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn more_pes_never_hurt_compute_cycles() {
        let m = model();
        let wl = GemmWorkload::new(128, 512, 256);
        for df in Dataflow::ALL {
            let mut prev = u64::MAX;
            for pes in [8u32, 16, 32, 64, 128, 256, 512] {
                let r = m.evaluate(&wl, df, &hw(pes, 256));
                assert!(
                    r.compute_cycles <= prev,
                    "{df}: compute cycles rose from {prev} to {} at {pes} PEs",
                    r.compute_cycles
                );
                prev = r.compute_cycles;
            }
        }
    }

    #[test]
    fn bigger_l2_never_increases_dram_traffic() {
        let m = model();
        let wl = GemmWorkload::new(200, 1500, 900);
        for df in Dataflow::ALL {
            let mut prev = u64::MAX;
            for kib in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
                let r = m.evaluate(&wl, df, &hw(128, kib));
                assert!(
                    r.dram_traffic_elems <= prev,
                    "{df}: dram traffic rose at {kib} KiB"
                );
                prev = r.dram_traffic_elems;
            }
        }
    }

    #[test]
    fn tiny_workload_is_compute_bound_on_big_buffer() {
        let m = model();
        let r = m.evaluate(
            &GemmWorkload::new(8, 32, 16),
            Dataflow::OutputStationary,
            &hw(8, 2048),
        );
        // whole problem fits: single tile in M/N
        assert_eq!(r.tiling.tiles_m, 1);
        assert_eq!(r.tiling.tiles_n, 1);
    }

    #[test]
    fn huge_workload_small_buffer_is_memory_bound() {
        let m = model();
        let r = m.evaluate(
            &GemmWorkload::new(256, 1677, 1185),
            Dataflow::WeightStationary,
            &hw(512, 1),
        );
        assert!(
            r.dram_cycles > r.compute_cycles,
            "expected memory bound: dram {} vs compute {}",
            r.dram_cycles,
            r.compute_cycles
        );
    }

    #[test]
    fn dataflows_disagree_on_skewed_shapes() {
        // A tall-skinny GEMM should not have identical costs across
        // dataflows: stationarity choices must matter.
        let m = model();
        let wl = GemmWorkload::new(4, 1600, 1024); // LLM-decode-like
        let ws = m.evaluate(&wl, Dataflow::WeightStationary, &hw(128, 64));
        let os = m.evaluate(&wl, Dataflow::OutputStationary, &hw(128, 64));
        let rs = m.evaluate(&wl, Dataflow::RowStationary, &hw(128, 64));
        let lats = [ws.latency_cycles, os.latency_cycles, rs.latency_cycles];
        assert!(
            lats.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "all dataflows identical: {lats:?}"
        );
    }

    #[test]
    fn best_config_is_interior_not_maximal() {
        // The premise of the DSE task: throwing maximal resources at a
        // small layer is *not* optimal (fill/drain overhead grows with the
        // array), so the argmin over the grid is an interior point.
        let m = model();
        let wl = GemmWorkload::new(32, 128, 64);
        let mut best = (u64::MAX, 0u32, 0u64);
        for pes in [8u32, 64, 128, 256, 512] {
            for kib in [1u64, 16, 256, 2048] {
                let r = m.evaluate(&wl, Dataflow::OutputStationary, &hw(pes, kib));
                if r.latency_cycles < best.0 {
                    best = (r.latency_cycles, pes, kib);
                }
            }
        }
        let max_cfg = m.evaluate(&wl, Dataflow::OutputStationary, &hw(512, 2048));
        assert!(
            best.0 < max_cfg.latency_cycles,
            "maximal config should be strictly suboptimal: best {} (at {}pe/{}KiB) vs max {}",
            best.0,
            best.1,
            best.2,
            max_cfg.latency_cycles
        );
        assert!(best.1 < 512, "optimal PE count should be interior");
    }

    #[test]
    fn edp_combines_energy_and_latency() {
        let m = model();
        let r = m.evaluate(
            &GemmWorkload::new(16, 16, 16),
            Dataflow::RowStationary,
            &hw(16, 16),
        );
        assert!((r.edp() - r.energy_pj * r.latency_cycles as f64).abs() < 1e-6);
    }

    #[test]
    fn spatial_factorize_respects_bounds() {
        let (x, y) = spatial_factorize(64, 4, 100);
        assert!(x <= 4 && y <= 100 && x * y <= 64);
        assert_eq!(x * y, 64); // 4 × 16
        let (x, y) = spatial_factorize(7, 100, 100);
        assert!(x * y <= 7 && x * y >= 4);
    }

    #[test]
    fn fit_pair_respects_budget() {
        let (a, b) = fit_pair(1000, 1000, 256);
        assert!(a * b <= 256);
        assert!(a >= 1 && b >= 1);
        // fits entirely
        assert_eq!(fit_pair(10, 10, 1000), (10, 10));
        // degenerate budget
        assert_eq!(fit_pair(10, 10, 1), (1, 1));
    }

    #[test]
    fn report_fields_are_consistent() {
        let m = model();
        let r = m.evaluate(
            &GemmWorkload::new(100, 200, 300),
            Dataflow::WeightStationary,
            &hw(64, 64),
        );
        assert!(r.latency_cycles >= r.compute_cycles.max(r.dram_cycles).max(r.l2_cycles));
        assert_eq!(
            r.latency_cycles,
            r.compute_cycles.max(r.dram_cycles).max(r.l2_cycles) + r.fill_drain_cycles
        );
        assert!(r.tiling.passes() >= 1);
    }
}
