//! Dataflow styles (loop orders / stationarity choices).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The three dataflows of the paper's Table I.
///
/// Following the paper's citations: weight-stationary after NVDLA [6],
/// output-stationary after ShiDianNao [8], row-stationary after
/// Eyeriss [7].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights (`B`, `K×N`) pinned in the PE array; inputs stream.
    WeightStationary,
    /// Outputs (`C`, `M×N`) accumulate in place; both inputs stream.
    OutputStationary,
    /// Input rows (`A`, `M×K`) pinned; weights and outputs stream.
    RowStationary,
}

impl Dataflow {
    /// All dataflows, in the categorical-encoding order used by the DSE
    /// dataset (index 0, 1, 2).
    pub const ALL: [Dataflow; 3] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::RowStationary,
    ];

    /// Categorical index (0 = WS, 1 = OS, 2 = RS) used as a model input.
    pub fn index(self) -> usize {
        match self {
            Dataflow::WeightStationary => 0,
            Dataflow::OutputStationary => 1,
            Dataflow::RowStationary => 2,
        }
    }

    /// Inverse of [`Dataflow::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 2`.
    pub fn from_index(idx: usize) -> Dataflow {
        Dataflow::ALL[idx]
    }

    /// Short lowercase mnemonic (`ws`, `os`, `rs`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "ws",
            Dataflow::OutputStationary => "os",
            Dataflow::RowStationary => "rs",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dataflow::WeightStationary => "weight-stationary",
            Dataflow::OutputStationary => "output-stationary",
            Dataflow::RowStationary => "row-stationary",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`Dataflow`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataflowError(String);

impl fmt::Display for ParseDataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown dataflow {:?} (expected ws, os or rs)", self.0)
    }
}

impl std::error::Error for ParseDataflowError {}

impl FromStr for Dataflow {
    type Err = ParseDataflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ws" | "weight-stationary" | "weight_stationary" => Ok(Dataflow::WeightStationary),
            "os" | "output-stationary" | "output_stationary" => Ok(Dataflow::OutputStationary),
            "rs" | "row-stationary" | "row_stationary" => Ok(Dataflow::RowStationary),
            other => Err(ParseDataflowError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for df in Dataflow::ALL {
            assert_eq!(Dataflow::from_index(df.index()), df);
        }
    }

    #[test]
    fn parse_mnemonics() {
        assert_eq!(
            "ws".parse::<Dataflow>().unwrap(),
            Dataflow::WeightStationary
        );
        assert_eq!(
            "OS".parse::<Dataflow>().unwrap(),
            Dataflow::OutputStationary
        );
        assert_eq!(
            "row-stationary".parse::<Dataflow>().unwrap(),
            Dataflow::RowStationary
        );
        assert!("xs".parse::<Dataflow>().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "weight-stationary");
        assert_eq!(Dataflow::RowStationary.mnemonic(), "rs");
    }
}
