//! GEMM workload description.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single GEMM `C[M,N] = A[M,K] × B[K,N]` — the per-layer workload unit
/// of the paper's DSE task (Table I).
///
/// Convolutions are lowered to GEMMs (im2col) by the `ai2-workloads`
/// crate, matching how MAESTRO-based studies treat CNN layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmWorkload {
    /// Rows of `A`/`C` (batch × output pixels, or tokens).
    pub m: u64,
    /// Columns of `B`/`C` (output channels / features).
    pub n: u64,
    /// Contraction dimension (input channels × kernel window).
    pub k: u64,
}

impl GemmWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — a zero-sized GEMM has no
    /// meaningful cost and almost always indicates an upstream bug.
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        assert!(
            m > 0 && n > 0 && k > 0,
            "GemmWorkload: zero dimension in ({m}, {n}, {k})"
        );
        GemmWorkload { m, n, k }
    }

    /// Number of multiply-accumulate operations, `M·N·K`.
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k
    }

    /// Total operand footprint in elements (`A + B + C`).
    pub fn footprint_elems(&self) -> u64 {
        self.m * self.k + self.k * self.n + self.m * self.n
    }

    /// Arithmetic intensity: MACs per element touched once.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.macs() as f64 / self.footprint_elems() as f64
    }

    /// The feature vector `(M, N, K)` as `f32`, in Table I order.
    pub fn features(&self) -> [f32; 3] {
        [self.m as f32, self.n as f32, self.k as f32]
    }
}

impl fmt::Display for GemmWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gemm({}×{}×{})", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_and_footprint() {
        let w = GemmWorkload::new(2, 3, 4);
        assert_eq!(w.macs(), 24);
        assert_eq!(w.footprint_elems(), 8 + 12 + 6);
        assert!((w.arithmetic_intensity() - 24.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_rejected() {
        GemmWorkload::new(0, 1, 1);
    }

    #[test]
    fn features_order_matches_table_i() {
        let w = GemmWorkload::new(10, 20, 30);
        assert_eq!(w.features(), [10.0, 20.0, 30.0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(GemmWorkload::new(1, 2, 3).to_string(), "gemm(1×2×3)");
    }
}
