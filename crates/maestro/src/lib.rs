//! An analytical cost model for DNN accelerators in the spirit of
//! MAESTRO (Kwon et al., *IEEE Micro* 2020) — the evaluation substrate of
//! the AIrchitect v2 reproduction.
//!
//! Given a GEMM workload, a dataflow and a hardware configuration
//! (#PEs + L2 buffer size), [`CostModel::evaluate`] estimates:
//!
//! * **latency** in cycles — a roofline-style maximum of compute cycles,
//!   DRAM-traffic cycles and L2-traffic cycles, plus array fill/drain
//!   overhead per tile pass,
//! * **energy** in pJ — per-access costs at each memory level plus MAC and
//!   leakage energy,
//! * **utilization**, per-level traffic, and tiling details.
//!
//! The three dataflows of the paper's Table I are modeled with distinct
//! spatial mappings and reuse patterns:
//!
//! | Dataflow            | Stationary operand | Spatial dims | Temporal dim |
//! |---------------------|--------------------|--------------|--------------|
//! | weight-stationary   | `B (K×N)`          | `K, N`       | `M`          |
//! | output-stationary   | `C (M×N)`          | `M, N`       | `K`          |
//! | row-stationary      | `A (M×K)`          | `M, K`       | `N`          |
//!
//! The integer tiling and spatial-factorisation steps produce the jagged,
//! non-convex latency landscape that motivates the paper (its Fig. 3a);
//! the area model makes resource allocation a genuine trade-off so the
//! per-layer optimum is workload-dependent (Fig. 3b's long tail).
//!
//! # Example
//!
//! ```
//! use ai2_maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};
//!
//! let model = CostModel::default();
//! let hw = AcceleratorConfig::new(128, 256 * 1024);
//! let wl = GemmWorkload::new(64, 1024, 512);
//! let report = model.evaluate(&wl, Dataflow::WeightStationary, &hw);
//! assert!(report.latency_cycles > 0);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! ```

mod accelerator;
mod cost;
mod dataflow;
mod workload;

pub use accelerator::{AcceleratorConfig, AreaModel};
pub use cost::{CostModel, CostParams, CostReport, Tiling};
pub use dataflow::Dataflow;
pub use workload::GemmWorkload;
