//! Property-based tests of cost-model invariants over random workloads
//! and hardware configurations.
//!
//! Written as seeded random sweeps (the `proptest` crate is unavailable
//! offline): each test draws 128 cases from a fixed seed, matching the
//! `ProptestConfig::with_cases(128)` of the original.

use ai2_maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 128;

fn arb_workload(r: &mut StdRng) -> GemmWorkload {
    GemmWorkload::new(
        r.random_range(1u64..=256),
        r.random_range(1u64..=1677),
        r.random_range(1u64..=1185),
    )
}

fn arb_hw(r: &mut StdRng) -> AcceleratorConfig {
    AcceleratorConfig::new(
        r.random_range(1u32..=64) * 8,
        1024u64 << r.random_range(0u32..12),
    )
}

fn arb_dataflow(r: &mut StdRng) -> Dataflow {
    Dataflow::from_index(r.random_range(0usize..3))
}

fn cases(seed: u64, mut f: impl FnMut(GemmWorkload, AcceleratorConfig, Dataflow)) {
    let mut r = StdRng::seed_from_u64(seed);
    for _ in 0..CASES {
        let (wl, hw, df) = (arb_workload(&mut r), arb_hw(&mut r), arb_dataflow(&mut r));
        f(wl, hw, df);
    }
}

#[test]
fn latency_never_beats_ideal_compute() {
    cases(0xC051, |wl, hw, df| {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        let ideal = wl.macs().div_ceil(hw.num_pes as u64);
        assert!(
            r.latency_cycles >= ideal,
            "latency {} below ideal {} ({wl}, {df}, {hw})",
            r.latency_cycles,
            ideal
        );
    });
}

#[test]
fn dram_traffic_at_least_compulsory() {
    cases(0xC052, |wl, hw, df| {
        // every operand must cross DRAM at least once
        let r = CostModel::default().evaluate(&wl, df, &hw);
        assert!(
            r.dram_traffic_elems >= wl.footprint_elems(),
            "traffic {} below compulsory {}",
            r.dram_traffic_elems,
            wl.footprint_elems()
        );
    });
}

#[test]
fn utilization_is_bounded() {
    cases(0xC053, |wl, hw, df| {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        assert!(
            r.utilization > 0.0 && r.utilization <= 1.0,
            "util {}",
            r.utilization
        );
    });
}

#[test]
fn energy_positive_and_dominated_by_work() {
    cases(0xC054, |wl, hw, df| {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        // at least one MAC worth of energy per MAC
        assert!(r.energy_pj >= wl.macs() as f64);
        assert!(r.energy_pj.is_finite());
    });
}

#[test]
fn report_is_internally_consistent() {
    cases(0xC055, |wl, hw, df| {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        assert_eq!(
            r.latency_cycles,
            r.compute_cycles.max(r.dram_cycles).max(r.l2_cycles) + r.fill_drain_cycles
        );
        assert!(r.tiling.m_t >= 1 && r.tiling.n_t >= 1 && r.tiling.k_t >= 1);
        assert!(r.tiling.m_t <= wl.m && r.tiling.n_t <= wl.n && r.tiling.k_t <= wl.k);
        assert!(r.tiling.tiles_m * r.tiling.m_t >= wl.m);
    });
}

#[test]
fn evaluation_is_deterministic() {
    cases(0xC056, |wl, hw, df| {
        let m = CostModel::default();
        assert_eq!(m.evaluate(&wl, df, &hw), m.evaluate(&wl, df, &hw));
    });
}

#[test]
fn doubling_buffer_never_increases_dram_traffic() {
    let mut r = StdRng::seed_from_u64(0xC057);
    for _ in 0..CASES {
        let wl = arb_workload(&mut r);
        let pe8 = r.random_range(1u32..=64);
        let bufpow = r.random_range(0u32..11);
        let df = arb_dataflow(&mut r);
        let m = CostModel::default();
        let small = m.evaluate(&wl, df, &AcceleratorConfig::new(pe8 * 8, 1024u64 << bufpow));
        let big = m.evaluate(
            &wl,
            df,
            &AcceleratorConfig::new(pe8 * 8, 1024u64 << (bufpow + 1)),
        );
        assert!(
            big.dram_traffic_elems <= small.dram_traffic_elems,
            "traffic rose {} → {} when doubling L2",
            small.dram_traffic_elems,
            big.dram_traffic_elems
        );
    }
}

#[test]
fn area_scales_with_resources() {
    let mut r = StdRng::seed_from_u64(0xC058);
    for _ in 0..CASES {
        let pe8 = r.random_range(1u32..=63);
        let bufpow = r.random_range(0u32..11);
        let m = CostModel::default();
        let base = m.area_mm2(&AcceleratorConfig::new(pe8 * 8, 1024u64 << bufpow));
        let more_pe = m.area_mm2(&AcceleratorConfig::new((pe8 + 1) * 8, 1024u64 << bufpow));
        let more_buf = m.area_mm2(&AcceleratorConfig::new(pe8 * 8, 1024u64 << (bufpow + 1)));
        assert!(more_pe > base);
        assert!(more_buf > base);
    }
}
