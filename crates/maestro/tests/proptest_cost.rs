//! Property-based tests of cost-model invariants over random workloads
//! and hardware configurations.

use ai2_maestro::{AcceleratorConfig, CostModel, Dataflow, GemmWorkload};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = GemmWorkload> {
    (1u64..=256, 1u64..=1677, 1u64..=1185).prop_map(|(m, n, k)| GemmWorkload::new(m, n, k))
}

fn arb_hw() -> impl Strategy<Value = AcceleratorConfig> {
    (1u32..=64, 0u32..12)
        .prop_map(|(pe8, bufpow)| AcceleratorConfig::new(pe8 * 8, 1024u64 << bufpow))
}

fn arb_dataflow() -> impl Strategy<Value = Dataflow> {
    (0usize..3).prop_map(Dataflow::from_index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn latency_never_beats_ideal_compute(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        let ideal = wl.macs().div_ceil(hw.num_pes as u64);
        prop_assert!(
            r.latency_cycles >= ideal,
            "latency {} below ideal {} ({wl}, {df}, {hw})",
            r.latency_cycles, ideal
        );
    }

    #[test]
    fn dram_traffic_at_least_compulsory(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        // every operand must cross DRAM at least once
        let r = CostModel::default().evaluate(&wl, df, &hw);
        prop_assert!(
            r.dram_traffic_elems >= wl.footprint_elems(),
            "traffic {} below compulsory {}",
            r.dram_traffic_elems,
            wl.footprint_elems()
        );
    }

    #[test]
    fn utilization_is_bounded(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0, "util {}", r.utilization);
    }

    #[test]
    fn energy_positive_and_dominated_by_work(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        // at least one MAC worth of energy per MAC
        prop_assert!(r.energy_pj >= wl.macs() as f64);
        prop_assert!(r.energy_pj.is_finite());
    }

    #[test]
    fn report_is_internally_consistent(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        let r = CostModel::default().evaluate(&wl, df, &hw);
        prop_assert_eq!(
            r.latency_cycles,
            r.compute_cycles.max(r.dram_cycles).max(r.l2_cycles) + r.fill_drain_cycles
        );
        prop_assert!(r.tiling.m_t >= 1 && r.tiling.n_t >= 1 && r.tiling.k_t >= 1);
        prop_assert!(r.tiling.m_t <= wl.m && r.tiling.n_t <= wl.n && r.tiling.k_t <= wl.k);
        prop_assert!(r.tiling.tiles_m * r.tiling.m_t >= wl.m);
    }

    #[test]
    fn evaluation_is_deterministic(wl in arb_workload(), hw in arb_hw(), df in arb_dataflow()) {
        let m = CostModel::default();
        prop_assert_eq!(m.evaluate(&wl, df, &hw), m.evaluate(&wl, df, &hw));
    }

    #[test]
    fn doubling_buffer_never_increases_dram_traffic(
        wl in arb_workload(),
        pe8 in 1u32..=64,
        bufpow in 0u32..11,
        df in arb_dataflow(),
    ) {
        let m = CostModel::default();
        let small = m.evaluate(&wl, df, &AcceleratorConfig::new(pe8 * 8, 1024u64 << bufpow));
        let big = m.evaluate(&wl, df, &AcceleratorConfig::new(pe8 * 8, 1024u64 << (bufpow + 1)));
        prop_assert!(
            big.dram_traffic_elems <= small.dram_traffic_elems,
            "traffic rose {} → {} when doubling L2",
            small.dram_traffic_elems,
            big.dram_traffic_elems
        );
    }

    #[test]
    fn area_scales_with_resources(pe8 in 1u32..=63, bufpow in 0u32..11) {
        let m = CostModel::default();
        let base = m.area_mm2(&AcceleratorConfig::new(pe8 * 8, 1024u64 << bufpow));
        let more_pe = m.area_mm2(&AcceleratorConfig::new((pe8 + 1) * 8, 1024u64 << bufpow));
        let more_buf = m.area_mm2(&AcceleratorConfig::new(pe8 * 8, 1024u64 << (bufpow + 1)));
        prop_assert!(more_pe > base);
        prop_assert!(more_buf > base);
    }
}
