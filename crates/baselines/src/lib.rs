//! Learning-based DSE baselines the paper compares against (Table III,
//! Figs. 7–9):
//!
//! * [`AirchitectV1`] — the MLP classifier of AIrchitect v1 \[5\], with a
//!   selectable output head so the Fig. 9 "classification vs UOV"
//!   comparison applies to it too;
//! * [`Gandse`] — the conditional-GAN design generator of GANDSE \[16\];
//! * [`Vaesa`] — the VAE latent space + Bayesian-optimization search of
//!   VAESA \[11\].
//!
//! All baselines train on the same [`airchitect::PreparedDataset`]
//! tensors and are scored through the same metric functions
//! ([`airchitect::predictor`]) as AIrchitect v2, so the comparisons are
//! apples-to-apples.

mod gandse;
mod v1;
mod vaesa;

pub use gandse::{Gandse, GandseConfig};
pub use v1::{AirchitectV1, V1Config};
pub use vaesa::{Vaesa, VaesaConfig};
