//! AIrchitect v1 (Samajdar et al. 2021): a plain MLP trained to classify
//! the optimal design choice.

use std::sync::Arc;

use ai2_dse::{DesignPoint, DseDataset, DseTask, EvalEngine};
use ai2_nn::layers::{Activation, Linear, Mlp};
use ai2_nn::optim::{Adam, Optimizer};
use ai2_nn::{Gradients, Graph, ParamStore};
use ai2_tensor::{rng, Tensor};
use ai2_uov::ConfigCodec;
use ai2_workloads::generator::DseInput;
use airchitect::predictor::PredictFn;
use airchitect::{FeatureEncoder, HeadKind, PreparedDataset};
use rand::seq::SliceRandom;

/// Hyperparameters of the v1 baseline.
#[derive(Debug, Clone)]
pub struct V1Config {
    /// Hidden-layer widths of the MLP backbone (paper: shallow MLP).
    pub hidden: Vec<usize>,
    /// Output representation: classification in the original, UOV for
    /// the Fig. 9 variant.
    pub head: HeadKind,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for V1Config {
    fn default() -> Self {
        V1Config {
            hidden: vec![256, 256],
            head: HeadKind::Classification,
            epochs: 60,
            batch_size: 256,
            lr: 2e-3,
            seed: 0xA1,
        }
    }
}

impl V1Config {
    /// Fast preset for tests.
    pub fn quick() -> Self {
        V1Config {
            hidden: vec![64, 64],
            epochs: 15,
            batch_size: 64,
            ..Self::default()
        }
    }
}

/// The trained v1 baseline: MLP backbone + two per-axis heads.
pub struct AirchitectV1 {
    cfg: V1Config,
    store: ParamStore,
    backbone: Mlp,
    head_pe: Linear,
    head_buf: Linear,
    pe_codec: Box<dyn ConfigCodec>,
    buf_codec: Box<dyn ConfigCodec>,
    features: FeatureEncoder,
    engine: Arc<EvalEngine>,
}

impl AirchitectV1 {
    /// Builds the model, fitting feature statistics on `train`.
    pub fn new(cfg: &V1Config, task: &DseTask, train: &DseDataset) -> AirchitectV1 {
        Self::with_engine(cfg, EvalEngine::shared(task.clone()), train)
    }

    /// Builds the model on a caller-provided shared [`EvalEngine`].
    pub fn with_engine(
        cfg: &V1Config,
        engine: Arc<EvalEngine>,
        train: &DseDataset,
    ) -> AirchitectV1 {
        let task = engine.task();
        let features = FeatureEncoder::fit(train);
        let mut store = ParamStore::new(cfg.seed);
        let mut widths = vec![airchitect::NUM_FEATURES];
        widths.extend(&cfg.hidden);
        let backbone = Mlp::new(&mut store, "v1.mlp", &widths, Activation::Relu);
        let last = *widths.last().expect("non-empty widths");
        let pe_codec = cfg.head.codec(task.space().num_pe_choices());
        let buf_codec = cfg.head.codec(task.space().num_buf_choices());
        let head_pe = Linear::new(&mut store, "v1.head_pe", last, pe_codec.width(), true);
        let head_buf = Linear::new(&mut store, "v1.head_buf", last, buf_codec.width(), true);
        AirchitectV1 {
            cfg: cfg.clone(),
            store,
            backbone,
            head_pe,
            head_buf,
            pe_codec,
            buf_codec,
            features,
            engine,
        }
    }

    /// Total scalar parameters (Fig. 9 model-size axis).
    pub fn model_size(&self) -> usize {
        self.store.num_scalars()
    }

    /// The feature encoder fitted at construction.
    pub fn feature_encoder(&self) -> &FeatureEncoder {
        &self.features
    }

    /// Trains the MLP; returns the mean loss per epoch.
    pub fn fit(&mut self, train: &DseDataset) -> Vec<f32> {
        let prep = PreparedDataset::build(
            train,
            self.engine.task(),
            &self.features,
            self.pe_codec.as_ref(),
            self.buf_codec.as_ref(),
            16,
        );
        let mut opt = Adam::new(self.cfg.lr);
        let mut r = rng::seeded(self.cfg.seed ^ 0x11);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut idx: Vec<usize> = (0..prep.len()).collect();
            idx.shuffle(&mut r);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0;
            for chunk in idx.chunks(self.cfg.batch_size.max(2)) {
                let batch = prep.batch(chunk);
                let (loss_value, grads) = self.step(&batch);
                epoch_loss += loss_value as f64;
                batches += 1;
                opt.step(&mut self.store, &grads);
            }
            history.push((epoch_loss / batches.max(1) as f64) as f32);
        }
        history
    }

    fn step(&self, batch: &airchitect::PreparedBatch) -> (f32, Gradients) {
        let mut g = Graph::new(&self.store);
        let x = g.constant(batch.features.clone());
        let h = self.backbone.forward(&mut g, x);
        let h = g.relu(h);
        let pe_logits = self.head_pe.forward(&mut g, h);
        let buf_logits = self.head_buf.forward(&mut g, h);
        let l_pe = self.head_loss(&mut g, pe_logits, &batch.pe_encoded, &batch.pe_targets);
        let l_buf = self.head_loss(&mut g, buf_logits, &batch.buf_encoded, &batch.buf_targets);
        let loss = g.add(l_pe, l_buf);
        let v = g.scalar(loss);
        let grads = g.backward(loss);
        (v, grads)
    }

    fn head_loss(
        &self,
        g: &mut Graph<'_>,
        logits: ai2_nn::VarId,
        encoded: &Tensor,
        targets: &[usize],
    ) -> ai2_nn::VarId {
        match self.cfg.head {
            HeadKind::Uov { .. } => g.unification_loss(logits, encoded.clone(), 0.75, 1.0),
            HeadKind::Classification => g.cross_entropy_loss(logits, targets),
            HeadKind::Regression => {
                let y = g.sigmoid(logits);
                g.mse_loss(y, encoded.clone())
            }
        }
    }

    /// The bound task.
    pub fn task(&self) -> &DseTask {
        self.engine.task()
    }

    /// The shared evaluation substrate.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }
}

impl PredictFn for AirchitectV1 {
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let f = self.features.encode_inputs(inputs);
        let mut g = Graph::new(&self.store);
        let x = g.constant(f);
        let h = self.backbone.forward(&mut g, x);
        let h = g.relu(h);
        let pe = self.head_pe.forward(&mut g, h);
        let buf = self.head_buf.forward(&mut g, h);
        let pe = g.sigmoid(pe);
        let buf = g.sigmoid(buf);
        let pe_v = g.value(pe);
        let buf_v = g.value(buf);
        (0..inputs.len())
            .map(|i| DesignPoint {
                pe_idx: self.pe_codec.decode(pe_v.row(i)),
                buf_idx: self.buf_codec.decode(buf_v.row(i)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;
    use airchitect::predictor::{bucket_accuracy_of, latency_ratio_of};

    fn setup(n: usize) -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: n,
                seed: 21,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn v1_loss_decreases() {
        let (task, ds) = setup(300);
        let mut v1 = AirchitectV1::new(&V1Config::quick(), &task, &ds);
        let hist = v1.fit(&ds);
        assert!(hist.last().unwrap() < &hist[0], "{hist:?}");
    }

    #[test]
    fn v1_predictions_valid_and_learnable() {
        let (task, ds) = setup(500);
        let (train, test) = ds.split(0.8, 1);
        let mut v1 = AirchitectV1::new(&V1Config::quick(), &task, &train);
        let before = latency_ratio_of(&v1, v1.engine(), &test);
        v1.fit(&train);
        let after = latency_ratio_of(&v1, v1.engine(), &test);
        let acc = bucket_accuracy_of(&v1, v1.engine(), &test);
        assert!(
            after < before || acc > 10.0,
            "v1 did not learn: ratio {before} → {after}, acc {acc}"
        );
        for p in v1.predict_points(&test.samples.iter().map(|s| s.input()).collect::<Vec<_>>()) {
            assert!(p.pe_idx < task.space().num_pe_choices());
            assert!(p.buf_idx < task.space().num_buf_choices());
        }
    }

    #[test]
    fn uov_head_variant_is_smaller_than_classification() {
        let (task, ds) = setup(60);
        let cls = AirchitectV1::new(&V1Config::default(), &task, &ds);
        let uov = AirchitectV1::new(
            &V1Config {
                head: HeadKind::Uov { k: 16 },
                ..V1Config::default()
            },
            &task,
            &ds,
        );
        assert!(
            uov.model_size() < cls.model_size(),
            "UOV head should shrink the model: {} vs {}",
            uov.model_size(),
            cls.model_size()
        );
    }
}
