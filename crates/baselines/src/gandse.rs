//! GANDSE (Feng et al., TODAES 2023): a conditional GAN that generates
//! design points for a workload specification.
//!
//! The generator maps `(features, noise)` to a continuous configuration
//! in `[0, 1]²` (normalized PE / buffer coordinates); the discriminator
//! judges `(features, configuration)` pairs. As in the original, a
//! supervised term anchors the generator to the known optima while the
//! adversarial term sharpens it — and, as the paper observes, the
//! "large unconstrained learning problem" of the generative approach
//! caps its accuracy below AIrchitect v2's.

use std::sync::Arc;

use ai2_dse::{DesignPoint, DseDataset, DseTask, EvalEngine};
use ai2_nn::layers::{Activation, Mlp};
use ai2_nn::optim::{Adam, Optimizer};
use ai2_nn::{Graph, ParamStore};
use ai2_tensor::{rng, Tensor};
use ai2_workloads::generator::DseInput;
use airchitect::predictor::PredictFn;
use airchitect::{FeatureEncoder, NUM_FEATURES};
use rand::seq::SliceRandom;

/// Hyperparameters of the GANDSE baseline.
#[derive(Debug, Clone)]
pub struct GandseConfig {
    /// Noise-vector width.
    pub noise_dim: usize,
    /// Hidden widths of generator and discriminator.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the supervised (L2-to-optimum) generator term.
    pub supervised_weight: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for GandseConfig {
    fn default() -> Self {
        GandseConfig {
            noise_dim: 4,
            hidden: 128,
            epochs: 60,
            batch_size: 256,
            lr: 1e-3,
            supervised_weight: 4.0,
            seed: 0x6A,
        }
    }
}

impl GandseConfig {
    /// Fast preset for tests.
    pub fn quick() -> Self {
        GandseConfig {
            hidden: 48,
            epochs: 15,
            batch_size: 64,
            ..Self::default()
        }
    }
}

/// The trained GANDSE baseline.
pub struct Gandse {
    cfg: GandseConfig,
    gen_store: ParamStore,
    disc_store: ParamStore,
    generator: Mlp,
    discriminator: Mlp,
    features: FeatureEncoder,
    engine: Arc<EvalEngine>,
}

impl Gandse {
    /// Builds generator and discriminator, fitting feature statistics on
    /// `train`.
    pub fn new(cfg: &GandseConfig, task: &DseTask, train: &DseDataset) -> Gandse {
        Self::with_engine(cfg, EvalEngine::shared(task.clone()), train)
    }

    /// Builds both networks on a caller-provided shared [`EvalEngine`].
    pub fn with_engine(cfg: &GandseConfig, engine: Arc<EvalEngine>, train: &DseDataset) -> Gandse {
        let features = FeatureEncoder::fit(train);
        let mut gen_store = ParamStore::new(cfg.seed);
        let generator = Mlp::new(
            &mut gen_store,
            "g",
            &[NUM_FEATURES + cfg.noise_dim, cfg.hidden, cfg.hidden, 2],
            Activation::Relu,
        );
        let mut disc_store = ParamStore::new(cfg.seed ^ 0xff);
        let discriminator = Mlp::new(
            &mut disc_store,
            "d",
            &[NUM_FEATURES + 2, cfg.hidden, cfg.hidden, 1],
            Activation::LeakyRelu,
        );
        Gandse {
            cfg: cfg.clone(),
            gen_store,
            disc_store,
            generator,
            discriminator,
            features,
            engine,
        }
    }

    /// Total scalar parameters of both networks.
    pub fn model_size(&self) -> usize {
        self.gen_store.num_scalars() + self.disc_store.num_scalars()
    }

    fn normalize_point(&self, p: DesignPoint) -> [f32; 2] {
        let s = self.engine.space();
        [
            p.pe_idx as f32 / (s.num_pe_choices() - 1) as f32,
            p.buf_idx as f32 / (s.num_buf_choices() - 1) as f32,
        ]
    }

    fn denormalize(&self, xy: &[f32]) -> DesignPoint {
        let s = self.engine.space();
        DesignPoint {
            pe_idx: ((xy[0].clamp(0.0, 1.0) * (s.num_pe_choices() - 1) as f32).round() as usize)
                .min(s.num_pe_choices() - 1),
            buf_idx: ((xy[1].clamp(0.0, 1.0) * (s.num_buf_choices() - 1) as f32).round() as usize)
                .min(s.num_buf_choices() - 1),
        }
    }

    /// Runs generator forward (sigmoid output in `[0,1]²`) on the given
    /// store (values only).
    fn generate(&self, feats: &Tensor, noise: &Tensor) -> Tensor {
        let gin = Tensor::concat_cols(&[feats, noise]);
        let mut g = Graph::new(&self.gen_store);
        let x = g.constant(gin);
        let h = self.generator.forward(&mut g, x);
        let y = g.sigmoid(h);
        g.value(y).clone()
    }

    /// Adversarial + supervised training. Returns
    /// `(generator_losses, discriminator_losses)` per epoch.
    pub fn fit(&mut self, train: &DseDataset) -> (Vec<f32>, Vec<f32>) {
        let inputs: Vec<DseInput> = train.samples.iter().map(|s| s.input()).collect();
        let feats = self.features.encode_inputs(&inputs);
        let optima: Vec<[f32; 2]> = train
            .samples
            .iter()
            .map(|s| self.normalize_point(s.optimal))
            .collect();

        let mut g_opt = Adam::new(self.cfg.lr);
        let mut d_opt = Adam::new(self.cfg.lr);
        let mut r = rng::seeded(self.cfg.seed ^ 0x77);
        let mut g_hist = Vec::new();
        let mut d_hist = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut idx: Vec<usize> = (0..train.len()).collect();
            idx.shuffle(&mut r);
            let mut g_loss_sum = 0.0f64;
            let mut d_loss_sum = 0.0f64;
            let mut batches = 0;
            for chunk in idx.chunks(self.cfg.batch_size.max(2)) {
                let b = chunk.len();
                let f_rows: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| Tensor::from_slice(feats.row(i)))
                    .collect();
                let fb = Tensor::stack_rows(&f_rows);
                let real_rows: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| Tensor::from_slice(&optima[i]))
                    .collect();
                let real = Tensor::stack_rows(&real_rows);
                let noise = rng::rand_uniform(&mut r, &[b, self.cfg.noise_dim], -1.0, 1.0);

                // --- discriminator step: real → 1, fake → 0
                let fake = self.generate(&fb, &noise);
                let d_in_real = Tensor::concat_cols(&[&fb, &real]);
                let d_in_fake = Tensor::concat_cols(&[&fb, &fake]);
                let d_in = Tensor::concat_rows(&[&d_in_real, &d_in_fake]);
                let mut dgraph = Graph::new(&self.disc_store);
                let x = dgraph.constant(d_in);
                let logits = self.discriminator.forward(&mut dgraph, x);
                let mut targets = Tensor::ones(&[2 * b, 1]);
                for i in b..2 * b {
                    targets.as_mut_slice()[i] = 0.0;
                }
                let d_loss = dgraph.bce_with_logits_loss(logits, targets);
                d_loss_sum += dgraph.scalar(d_loss) as f64;
                let d_grads = dgraph.backward(d_loss);
                drop(dgraph);
                d_opt.step(&mut self.disc_store, &d_grads);

                // --- generator step: fool D + stay close to the optimum.
                // The discriminator is frozen here: its parameters live in
                // a separate store, so the generator graph embeds D's
                // weights as constants and only G receives gradients.
                let mut ggraph = Graph::new(&self.gen_store);
                let gin = Tensor::concat_cols(&[&fb, &noise]);
                let x = ggraph.constant(gin);
                let h = self.generator.forward(&mut ggraph, x);
                let gen_cfg = ggraph.sigmoid(h);
                // inline frozen discriminator on [fb, gen_cfg]
                let fb_v = ggraph.constant(fb.clone());
                let d_input = concat_cols_var(&mut ggraph, fb_v, gen_cfg, b);
                let d_logits = forward_frozen_mlp(
                    &mut ggraph,
                    &self.disc_store,
                    &["d.l0", "d.l1", "d.l2"],
                    d_input,
                );
                let adv = ggraph.bce_with_logits_loss(d_logits, Tensor::ones(&[b, 1]));
                let sup = ggraph.mse_loss(gen_cfg, real);
                let sup_w = ggraph.scale(sup, self.cfg.supervised_weight);
                let g_loss = ggraph.add(adv, sup_w);
                g_loss_sum += ggraph.scalar(g_loss) as f64;
                let g_grads = ggraph.backward(g_loss);
                drop(ggraph);
                g_opt.step(&mut self.gen_store, &g_grads);
                batches += 1;
            }
            g_hist.push((g_loss_sum / batches.max(1) as f64) as f32);
            d_hist.push((d_loss_sum / batches.max(1) as f64) as f32);
        }
        (g_hist, d_hist)
    }

    /// The bound task.
    pub fn task(&self) -> &DseTask {
        self.engine.task()
    }

    /// The shared evaluation substrate.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }
}

/// Concatenates two variables column-wise by value (no gradient through
/// the first operand, which is a constant anyway in the GANDSE use).
fn concat_cols_var(
    g: &mut Graph<'_>,
    a_const: ai2_nn::VarId,
    b_grad: ai2_nn::VarId,
    rows: usize,
) -> ai2_nn::VarId {
    // pad the gradient-carrying part into the right columns with matmul
    // selectors: [a | b] = a × Sa + b × Sb
    let (ca, cb) = (g.value(a_const).cols(), g.value(b_grad).cols());
    let total = ca + cb;
    let mut sa = Tensor::zeros(&[ca, total]);
    for i in 0..ca {
        sa[(i, i)] = 1.0;
    }
    let mut sb = Tensor::zeros(&[cb, total]);
    for i in 0..cb {
        sb[(i, ca + i)] = 1.0;
    }
    let sa = g.constant(sa);
    let sb = g.constant(sb);
    let left = g.matmul(a_const, sa);
    let right = g.matmul(b_grad, sb);
    debug_assert_eq!(g.value(left).rows(), rows);
    g.add(left, right)
}

/// Forward pass of an MLP whose parameters live in a *different* store,
/// embedded as constants (frozen discriminator inside the generator
/// step).
fn forward_frozen_mlp(
    g: &mut Graph<'_>,
    store: &ParamStore,
    layer_prefixes: &[&str],
    mut x: ai2_nn::VarId,
) -> ai2_nn::VarId {
    for (i, prefix) in layer_prefixes.iter().enumerate() {
        let w = store
            .find(&format!("{prefix}.w"))
            .unwrap_or_else(|| panic!("missing frozen weight {prefix}.w"));
        let b = store
            .find(&format!("{prefix}.b"))
            .unwrap_or_else(|| panic!("missing frozen bias {prefix}.b"));
        let wv = g.constant(store.get(w).clone());
        let bv = g.constant(store.get(b).clone());
        x = g.matmul(x, wv);
        x = g.add_row(x, bv);
        if i + 1 < layer_prefixes.len() {
            x = g.leaky_relu(x, 0.2);
        }
    }
    x
}

impl PredictFn for Gandse {
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let feats = self.features.encode_inputs(inputs);
        // deterministic inference: zero noise (the conditional mean)
        let noise = Tensor::zeros(&[inputs.len(), self.cfg.noise_dim]);
        let out = self.generate(&feats, &noise);
        (0..inputs.len())
            .map(|i| self.denormalize(out.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;
    use airchitect::predictor::{bucket_accuracy_of, latency_ratio_of};

    fn setup(n: usize) -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: n,
                seed: 31,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn gandse_losses_are_finite_and_generator_learns() {
        let (task, ds) = setup(300);
        let mut gan = Gandse::new(&GandseConfig::quick(), &task, &ds);
        let (g_hist, d_hist) = gan.fit(&ds);
        assert!(g_hist.iter().all(|l| l.is_finite()));
        assert!(d_hist.iter().all(|l| l.is_finite()));
        // generator loss should come down as the supervised term fits
        assert!(g_hist.last().unwrap() < &g_hist[0], "{g_hist:?}");
    }

    #[test]
    fn gandse_predictions_improve_over_untrained() {
        let (task, ds) = setup(600);
        let (train, test) = ds.split(0.8, 2);
        let cfg = GandseConfig {
            epochs: 40,
            hidden: 64,
            batch_size: 128,
            ..GandseConfig::default()
        };
        let mut gan = Gandse::new(&cfg, &task, &train);
        let acc_before = bucket_accuracy_of(&gan, gan.engine(), &test);
        gan.fit(&train);
        let acc_after = bucket_accuracy_of(&gan, gan.engine(), &test);
        let ratio = latency_ratio_of(&gan, gan.engine(), &test);
        assert!(
            acc_after > acc_before + 5.0,
            "GANDSE did not learn: acc {acc_before} → {acc_after} (ratio {ratio})"
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let (task, ds) = setup(60);
        let gan = Gandse::new(&GandseConfig::quick(), &task, &ds);
        let inputs: Vec<DseInput> = ds.samples.iter().map(|s| s.input()).collect();
        assert_eq!(gan.predict_points(&inputs), gan.predict_points(&inputs));
    }
}
