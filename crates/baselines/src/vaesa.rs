//! VAESA (Huang et al., ISPASS 2022): a variational autoencoder over the
//! design space, searched with Bayesian optimization in the latent space.
//!
//! The VAE learns `configuration → latent → configuration` conditioned on
//! the workload features; DSE for a new workload runs BO over the latent
//! box, decoding each probe to a hardware configuration and scoring it
//! with the cost model ("VAESA + BO" in the paper's Table III / Fig. 8a).

use ai2_dse::search::bo::{BoMinimizer, BoTrace};
use std::sync::Arc;

use ai2_dse::{DesignPoint, DseDataset, DseTask, EvalEngine};
use ai2_nn::layers::{Activation, Linear, Mlp};
use ai2_nn::optim::{Adam, Optimizer};
use ai2_nn::{Graph, ParamStore, VarId};
use ai2_tensor::{rng, Tensor};
use ai2_workloads::generator::DseInput;
use airchitect::predictor::PredictFn;
use airchitect::{FeatureEncoder, NUM_FEATURES};
use rand::seq::SliceRandom;

/// Hyperparameters of the VAESA baseline.
#[derive(Debug, Clone)]
pub struct VaesaConfig {
    /// Latent dimensionality (2 suffices for the 2-axis space).
    pub latent_dim: usize,
    /// Hidden width of encoder/decoder MLPs.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// KL-term weight β.
    pub beta: f32,
    /// BO query budget per workload at inference.
    pub bo_budget: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for VaesaConfig {
    fn default() -> Self {
        VaesaConfig {
            latent_dim: 2,
            hidden: 128,
            epochs: 60,
            batch_size: 256,
            lr: 1e-3,
            beta: 0.05,
            bo_budget: 40,
            seed: 0x7A,
        }
    }
}

impl VaesaConfig {
    /// Fast preset for tests.
    pub fn quick() -> Self {
        VaesaConfig {
            hidden: 48,
            epochs: 15,
            batch_size: 64,
            bo_budget: 15,
            ..Self::default()
        }
    }
}

/// The trained VAESA baseline.
pub struct Vaesa {
    cfg: VaesaConfig,
    store: ParamStore,
    enc: Mlp,
    enc_mu: Linear,
    enc_logvar: Linear,
    dec: Mlp,
    features: FeatureEncoder,
    engine: Arc<EvalEngine>,
}

impl Vaesa {
    /// Builds the VAE, fitting feature statistics on `train`.
    pub fn new(cfg: &VaesaConfig, task: &DseTask, train: &DseDataset) -> Vaesa {
        Self::with_engine(cfg, EvalEngine::shared(task.clone()), train)
    }

    /// Builds the VAE on a caller-provided shared [`EvalEngine`].
    pub fn with_engine(cfg: &VaesaConfig, engine: Arc<EvalEngine>, train: &DseDataset) -> Vaesa {
        let features = FeatureEncoder::fit(train);
        let mut store = ParamStore::new(cfg.seed);
        let enc = Mlp::new(
            &mut store,
            "vae.enc",
            &[NUM_FEATURES + 2, cfg.hidden, cfg.hidden],
            Activation::Relu,
        );
        let enc_mu = Linear::new(&mut store, "vae.mu", cfg.hidden, cfg.latent_dim, true);
        let enc_logvar = Linear::new(&mut store, "vae.logvar", cfg.hidden, cfg.latent_dim, true);
        let dec = Mlp::new(
            &mut store,
            "vae.dec",
            &[NUM_FEATURES + cfg.latent_dim, cfg.hidden, cfg.hidden, 2],
            Activation::Relu,
        );
        Vaesa {
            cfg: cfg.clone(),
            store,
            enc,
            enc_mu,
            enc_logvar,
            dec,
            features,
            engine,
        }
    }

    /// Total scalar parameters.
    pub fn model_size(&self) -> usize {
        self.store.num_scalars()
    }

    fn normalize_point(&self, p: DesignPoint) -> [f32; 2] {
        let s = self.engine.space();
        [
            p.pe_idx as f32 / (s.num_pe_choices() - 1) as f32,
            p.buf_idx as f32 / (s.num_buf_choices() - 1) as f32,
        ]
    }

    fn denormalize(&self, xy: &[f32]) -> DesignPoint {
        let s = self.engine.space();
        DesignPoint {
            pe_idx: ((xy[0].clamp(0.0, 1.0) * (s.num_pe_choices() - 1) as f32).round() as usize)
                .min(s.num_pe_choices() - 1),
            buf_idx: ((xy[1].clamp(0.0, 1.0) * (s.num_buf_choices() - 1) as f32).round() as usize)
                .min(s.num_buf_choices() - 1),
        }
    }

    fn encoder_forward(&self, g: &mut Graph<'_>, x: VarId) -> (VarId, VarId) {
        let h = self.enc.forward(g, x);
        let h = g.relu(h);
        (self.enc_mu.forward(g, h), self.enc_logvar.forward(g, h))
    }

    /// ELBO training. Returns the mean loss per epoch.
    pub fn fit(&mut self, train: &DseDataset) -> Vec<f32> {
        let inputs: Vec<DseInput> = train.samples.iter().map(|s| s.input()).collect();
        let feats = self.features.encode_inputs(&inputs);
        let configs: Vec<[f32; 2]> = train
            .samples
            .iter()
            .map(|s| self.normalize_point(s.optimal))
            .collect();

        let mut opt = Adam::new(self.cfg.lr);
        let mut r = rng::seeded(self.cfg.seed ^ 0x33);
        let mut history = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut idx: Vec<usize> = (0..train.len()).collect();
            idx.shuffle(&mut r);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0;
            for chunk in idx.chunks(self.cfg.batch_size.max(2)) {
                let b = chunk.len();
                let f_rows: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| Tensor::from_slice(feats.row(i)))
                    .collect();
                let fb = Tensor::stack_rows(&f_rows);
                let c_rows: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| Tensor::from_slice(&configs[i]))
                    .collect();
                let cb = Tensor::stack_rows(&c_rows);
                let eps = rng::randn(&mut r, &[b, self.cfg.latent_dim]);

                let mut g = Graph::new(&self.store);
                let x = g.constant(Tensor::concat_cols(&[&fb, &cb]));
                let (mu, logvar) = self.encoder_forward(&mut g, x);
                // z = μ + ε · exp(½ logvar)
                let half_lv = g.scale(logvar, 0.5);
                let std = g.exp(half_lv);
                let epsv = g.constant(eps);
                let noise = g.mul(epsv, std);
                let z = g.add(mu, noise);
                // decode conditioned on features
                let dec_in = concat_feature_latent(&mut g, &fb, z);
                let h = self.dec.forward(&mut g, dec_in);
                let recon = g.sigmoid(h);
                let recon_loss = g.mse_loss(recon, cb);
                // KL = −½ mean(1 + logvar − μ² − e^logvar)
                let mu2 = g.mul(mu, mu);
                let elv = g.exp(logvar);
                let t1 = g.add_scalar(logvar, 1.0);
                let t2 = g.sub(t1, mu2);
                let t3 = g.sub(t2, elv);
                let klm = g.mean_all(t3);
                let kl = g.scale(klm, -0.5 * self.cfg.beta);
                let loss = g.add(recon_loss, kl);
                epoch_loss += g.scalar(loss) as f64;
                let grads = g.backward(loss);
                drop(g);
                opt.step(&mut self.store, &grads);
                batches += 1;
            }
            history.push((epoch_loss / batches.max(1) as f64) as f32);
        }
        history
    }

    /// Decodes a latent point (conditioned on a workload) to a design
    /// point — the probe evaluated by BO.
    pub fn decode_latent(&self, input: &DseInput, z: &[f64]) -> DesignPoint {
        let f = self.features.encode_input(input);
        let zrow: Vec<f32> = z.iter().map(|&v| v as f32).collect();
        let mut row = f.to_vec();
        row.extend_from_slice(&zrow);
        let x = Tensor::from_vec(row, &[1, NUM_FEATURES + self.cfg.latent_dim]).expect("sized");
        let mut g = Graph::new(&self.store);
        let xv = g.constant(x);
        let h = self.dec.forward(&mut g, xv);
        let y = g.sigmoid(h);
        self.denormalize(g.value(y).row(0))
    }

    /// Runs the BO search in latent space for one workload, returning the
    /// trace (for Fig. 8a) — each BO query costs one cost-model
    /// evaluation, like any search-based method.
    pub fn search(&self, input: &DseInput, budget: usize, seed: u64) -> (DesignPoint, BoTrace) {
        let lo = -3.0;
        let hi = 3.0;
        let bounds = vec![(lo, hi); self.cfg.latent_dim];
        let bo = BoMinimizer::new(bounds, seed);
        let mut best = DesignPoint {
            pe_idx: 0,
            buf_idx: 0,
        };
        let mut best_score = f64::INFINITY;
        let trace = bo.minimize(
            |z| {
                let p = self.decode_latent(input, z);
                let score = match self.engine.score(input, p) {
                    Some(s) => s,
                    None => self.engine.score_unchecked(input, p) * 10.0,
                };
                if score < best_score && self.engine.is_feasible(p) {
                    best_score = score;
                    best = p;
                }
                score.max(1.0).ln()
            },
            budget.max(1),
        );
        (best, trace)
    }

    /// The bound task.
    pub fn task(&self) -> &DseTask {
        self.engine.task()
    }

    /// The shared evaluation substrate.
    pub fn engine(&self) -> &Arc<EvalEngine> {
        &self.engine
    }
}

/// `[features | latent]` with gradients flowing only through the latent.
fn concat_feature_latent(g: &mut Graph<'_>, feats: &Tensor, z: VarId) -> VarId {
    let (cf, cz) = (feats.cols(), g.value(z).cols());
    let total = cf + cz;
    let mut sf = Tensor::zeros(&[cf, total]);
    for i in 0..cf {
        sf[(i, i)] = 1.0;
    }
    let mut sz = Tensor::zeros(&[cz, total]);
    for i in 0..cz {
        sz[(i, cf + i)] = 1.0;
    }
    let fv = g.constant(feats.clone());
    let sfv = g.constant(sf);
    let szv = g.constant(sz);
    let left = g.matmul(fv, sfv);
    let right = g.matmul(z, szv);
    g.add(left, right)
}

impl PredictFn for Vaesa {
    /// One recommendation per input via the latent BO search (seeded by
    /// the input index for determinism).
    fn predict_points(&self, inputs: &[DseInput]) -> Vec<DesignPoint> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, input)| self.search(input, self.cfg.bo_budget, i as u64).0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_dse::GenerateConfig;

    fn setup(n: usize) -> (DseTask, DseDataset) {
        let task = DseTask::table_i_default();
        let ds = DseDataset::generate(
            &task,
            &GenerateConfig {
                num_samples: n,
                seed: 41,
                threads: 2,
                ..GenerateConfig::default()
            },
        );
        (task, ds)
    }

    #[test]
    fn vae_loss_decreases() {
        let (task, ds) = setup(300);
        let mut vae = Vaesa::new(&VaesaConfig::quick(), &task, &ds);
        let hist = vae.fit(&ds);
        assert!(hist.iter().all(|l| l.is_finite()));
        assert!(hist.last().unwrap() < &hist[0], "{hist:?}");
    }

    #[test]
    fn latent_decoding_covers_multiple_configs() {
        let (task, ds) = setup(200);
        let mut vae = Vaesa::new(&VaesaConfig::quick(), &task, &ds);
        vae.fit(&ds);
        let input = ds.samples[0].input();
        let mut distinct = std::collections::HashSet::new();
        for zx in [-2.0, -1.0, 0.0, 1.0, 2.0] {
            for zy in [-2.0, 0.0, 2.0] {
                distinct.insert(vae.decode_latent(&input, &[zx, zy]));
            }
        }
        assert!(
            distinct.len() >= 3,
            "latent space collapsed to {} configs",
            distinct.len()
        );
    }

    #[test]
    fn bo_search_finds_better_than_first_probe() {
        let (task, ds) = setup(300);
        let mut vae = Vaesa::new(&VaesaConfig::quick(), &task, &ds);
        vae.fit(&ds);
        let input = ds.samples[1].input();
        let (best, trace) = vae.search(&input, 25, 7);
        assert!(vae.engine().is_feasible(best));
        let first = trace.best_trace[0];
        let last = *trace.best_trace.last().unwrap();
        assert!(last <= first, "BO made things worse: {first} → {last}");
    }
}
