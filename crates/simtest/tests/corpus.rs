//! The regression corpus: every named scenario replays under a fixed
//! seed on every `cargo test`, the invariant-coverage union is asserted
//! to span the whole checker, and the determinism contract (same seed →
//! byte-identical checker transcript) is pinned.

use std::collections::BTreeMap;

use ai2_simtest::{corpus, run_scenario, Scenario, INVARIANTS};

/// The corpus seed. Changing it is fine — the coverage assertion below
/// will tell you if a new seed stops exercising an invariant.
const SEED: u64 = 1;

#[test]
fn every_corpus_scenario_passes_and_the_union_covers_every_invariant() {
    let mut union: BTreeMap<String, u64> = BTreeMap::new();
    for sc in corpus() {
        let report = run_scenario(sc, SEED, sc.default_steps);
        assert!(
            report.passed(),
            "{} failed at step {}: {}\nreplay: {}\ntranscript tail:\n{}",
            sc.name,
            report.failure.as_ref().unwrap().step,
            report.failure.as_ref().unwrap().message,
            report.replay_command(),
            report
                .transcript
                .lines()
                .rev()
                .take(15)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect::<Vec<_>>()
                .join("\n")
        );
        // a passing run must at least have verified answers and drained
        let covered: BTreeMap<String, u64> = report.coverage.into_iter().collect();
        assert!(
            covered["bit_identity"] > 0,
            "{}: no answer was ever oracle-checked",
            sc.name
        );
        assert!(
            covered["zero_drops"] > 0,
            "{}: drain never settled",
            sc.name
        );
        for (name, count) in covered {
            *union.entry(name).or_insert(0) += count;
        }
    }
    // the checker-coverage assertion: at least one seeded scenario
    // exercises every invariant in the checker layer
    for invariant in INVARIANTS {
        assert!(
            union.get(invariant).copied().unwrap_or(0) > 0,
            "no corpus scenario exercised the {invariant} invariant \
             (union coverage: {union:?})"
        );
    }
}

#[test]
fn same_seed_same_scenario_produces_byte_identical_transcripts() {
    // the replay guarantee the whole harness is built on: two
    // consecutive runs of (seed, scenario, steps) cannot diverge by a
    // single byte — not in event order, not in answers, not in checks
    let sc = Scenario::by_name("swap-under-load").expect("corpus scenario");
    let a = run_scenario(sc, 0xA1C2, 200);
    let b = run_scenario(sc, 0xA1C2, 200);
    assert!(a.passed(), "replay fixture run failed: {:?}", a.failure);
    assert_eq!(
        a.transcript, b.transcript,
        "two runs of the same (seed, scenario, steps) diverged"
    );
    // the trace capture is under the same contract: span ids are
    // allocated in admission order and timestamps come off the virtual
    // clock, so the Chrome trace exports cannot differ either
    assert_eq!(
        a.trace_json, b.trace_json,
        "two runs of the same (seed, scenario, steps) produced different traces"
    );
    assert!(
        a.trace_json.contains("\"serve.request\""),
        "the fixture run traced nothing"
    );
    // and a different seed genuinely produces a different interleaving
    let c = run_scenario(sc, 0xA1C3, 200);
    assert_ne!(
        a.transcript, c.transcript,
        "different seeds must explore different interleavings"
    );
    assert_ne!(
        a.trace_json, c.trace_json,
        "different seeds must produce different traces"
    );
}

#[test]
fn failure_step_bounds_the_minimal_replay() {
    // the shrink contract: the event sequence is prefix-deterministic,
    // so running exactly `failure.step` steps reproduces any mid-run
    // failure. There is no real failure to shrink here (the corpus
    // passes), so pin the prefix property itself: a shorter run's
    // transcript is a prefix of the longer run's, line for line, up to
    // the drain.
    let sc = Scenario::by_name("steady-mixed").expect("corpus scenario");
    let long = run_scenario(sc, 42, 120);
    let short = run_scenario(sc, 42, 60);
    // drop the header (it names the differing step count), stop at the
    // drain; what remains is the shared 59-step event prefix
    let prefix = |report: &ai2_simtest::SimReport| -> Vec<String> {
        report
            .transcript
            .lines()
            .skip(1)
            .take_while(|l| !l.contains("drain") && !l.starts_with('#'))
            .map(str::to_string)
            .collect()
    };
    let long_lines = prefix(&long);
    let short_lines = prefix(&short);
    assert!(short_lines.len() > 30, "short run produced too few events");
    for (a, b) in long_lines.iter().zip(&short_lines) {
        assert_eq!(a, b, "event prefixes diverged between step counts");
    }
}
