//! The invariant checker: after every simulation step, the system's
//! observable behavior is compared against independently reconstructed
//! ground truth.
//!
//! The checker owns its **own** oracle substrate — a fresh
//! [`BackendEngines`] over the same task, a fresh [`Airchitect2`]
//! replica per published checkpoint version, and its own compilation of
//! the scenario's [`PipelineSet`] — deliberately separate from the
//! engines, replicas, and pipelines inside the service under test.
//! Every completed response is recomputed through the pure
//! [`recommend_batch_in`] executor on the replica version that answered
//! and must match **bit for bit** (costs compared as `f64::to_bits`).
//!
//! Invariants ([`INVARIANTS`], each with a coverage counter so the
//! corpus test can assert every one is actually exercised):
//!
//! * `bit_identity` — responses identical to a fresh Predictor +
//!   EvalEngine oracle for the version that answered (errors included:
//!   invalid queries must produce the oracle's exact error).
//! * `monotonic_version` — the observable `model_version` (stats lines,
//!   admin acks, registry reads) never moves backwards.
//! * `cache_epoch_isolation` — a canonical query re-asked across a
//!   version change must be answered by the *new* version's oracle:
//!   the epoch-tagged cache may never leak a cross-version answer.
//! * `zero_drops` — every admitted request completes exactly once, no
//!   matter how many swaps/freezes/refreshes the run interleaved.
//! * `backend_isolation` — the same canonical GEMM asked under more
//!   than one cost backend (analytic, systolic, cascade) is verified
//!   against each backend's own oracle engine; per-backend caches
//!   never cross.
//! * `deadline_honored` — a deadline error is only ever issued at or
//!   after the request's deadline on the virtual clock.
//! * `frozen_rejects_publish` — while frozen, swaps and refreshes are
//!   rejected with the frozen error (and serving continues).
//! * `flavor_scoped_identity` — under a quantized scenario the oracle
//!   replicas carry the int8 decoder flavor too, so the bit-identity
//!   check is scoped *within* the flavor: an int8 shard is held to the
//!   int8 oracle, never to the f32 one (and stats must report every
//!   shard as quantized).
//! * `trace_well_nested` — the span tree the run's trace capture
//!   recorded is structurally sound: every child span lies within its
//!   parent's `[start, end]` window, siblings under one parent never
//!   *partially* overlap (one strictly starting inside another and
//!   ending after it), and every non-root parent id resolves to a
//!   recorded span.
//! * `pipeline_identity` — requests on the default pipeline (named or
//!   implicit) are additionally recomputed through the pre-pipeline
//!   one-shot [`recommend_batch`] entry point and must still match bit
//!   for bit (the refactor's degenerate-pipeline contract); requests on
//!   a staged pipeline must beat-or-tie the one-shot answer's point
//!   re-scored under the staged backend (feasibility first, then cost —
//!   the executor's never-worse clamp). Per-pipeline `served` counters
//!   in stats snapshots are cross-checked against the checker's books.
//! * `cascade_identity` — answers served through the staged cascade
//!   backend are bit-identical to re-running the whole
//!   prefilter → escalate → calibrate cascade against the checker's own
//!   fresh per-stage oracles (its private analytic and systolic
//!   engines): the oracle recompute that `bit_identity` performs goes
//!   through the checker's own [`BackendEngines`], whose cascade is
//!   staged over its own sibling engines, so a match proves the staged
//!   construction is deterministic end to end.
//! * `shed_accounting` — under a shed admission policy
//!   (`ServeConfig::overload`), every refused request is answered
//!   inline with the shedding error and counted exactly once, and the
//!   books balance at drain: delivered recommendations = completions +
//!   sheds (with `zero_drops` closing the loop — every admitted request
//!   still completes). Stats snapshots must report the same `sheds`
//!   count and a `queue_high_water` no lower than the configured mark
//!   once anything has shed.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ai2_dse::{BackendId, DseTask, EvalEngine, PipelineSet};
use ai2_serve::{
    recommend_batch, recommend_batch_in, AdminAck, BackendEngines, QueryKey, RecommendRequest,
    Response, ServeStats,
};
use airchitect::{Airchitect2, InferenceScratch, ModelCheckpoint};

/// Every invariant the checker tracks, by coverage-counter name.
pub const INVARIANTS: [&str; 12] = [
    "bit_identity",
    "monotonic_version",
    "cache_epoch_isolation",
    "zero_drops",
    "backend_isolation",
    "cascade_identity",
    "deadline_honored",
    "frozen_rejects_publish",
    "flavor_scoped_identity",
    "trace_well_nested",
    "pipeline_identity",
    "shed_accounting",
];

/// The canonical identity of a request with the backend stripped —
/// under this key the analytic and systolic answers to the same
/// question meet for the `backend_isolation` check.
fn canon_no_backend(req: &RecommendRequest) -> Option<QueryKey> {
    let mut r = req.clone();
    r.backend = None;
    QueryKey::of(&r)
}

/// The `pipeline_identity` recompute (see the module docs): default
/// answers must equal the pre-pipeline one-shot kernel bit for bit;
/// staged answers must beat-or-tie the one-shot pick re-scored under
/// the staged backend. Returns whether this completion exercised the
/// invariant.
fn pipeline_identity_check(
    engines: &BackendEngines,
    req: &RecommendRequest,
    resp: &Response,
    replica: &Airchitect2,
) -> Result<bool, String> {
    match req.pipeline.as_deref() {
        None | Some("default") => {
            // the degenerate-pipeline contract: selecting no pipeline
            // (or naming the built-in) is the historical one-shot path
            let mut one_shot = req.clone();
            one_shot.pipeline = None;
            let legacy = recommend_batch(replica, engines, std::slice::from_ref(&one_shot))
                .pop()
                .expect("one request, one answer");
            if &legacy != resp {
                return Err(format!(
                    "id {}: default-pipeline answer diverged from the one-shot kernel\n    \
                     got:      {resp:?}\n    expected: {legacy:?}",
                    req.id
                ));
            }
            Ok(true)
        }
        Some(_) => {
            let Response::Recommendation(rec) = resp else {
                // staged errors (unknown pipeline, model-through-staged)
                // are already pinned bit-for-bit by `bit_identity`
                return Ok(false);
            };
            let mut one_shot = req.clone();
            one_shot.pipeline = None;
            let os = recommend_batch(replica, engines, std::slice::from_ref(&one_shot))
                .pop()
                .expect("one request, one answer");
            let Response::Recommendation(os) = os else {
                return Err(format!(
                    "id {}: staged answered a query the one-shot kernel rejects: {os:?}",
                    req.id
                ));
            };
            let input = req
                .query
                .as_dse_input()
                .expect("a staged recommendation implies a valid GEMM");
            let backend: BackendId = rec.backend.parse().map_err(|e| {
                format!("id {}: unparseable backend {:?}: {e}", req.id, rec.backend)
            })?;
            let engine = engines.get(backend);
            let os_cost = engine.score_unchecked_with(&input, os.point, req.objective);
            let os_feasible = engine.is_feasible_under(os.point, req.budget);
            // the executor's clamp rank: feasibility first, then cost
            let worse = (!rec.feasible && os_feasible)
                || (rec.feasible == os_feasible && rec.cost > os_cost);
            if worse {
                return Err(format!(
                    "id {}: staged answer is worse than the one-shot pick under {:?} on {}: \
                     staged (feasible={}, cost={}) vs one-shot point ({},{}) (feasible={}, \
                     cost={os_cost})",
                    req.id,
                    req.objective,
                    rec.backend,
                    rec.feasible,
                    rec.cost,
                    os.point.pe_idx,
                    os.point.buf_idx,
                    os_feasible
                ));
            }
            Ok(true)
        }
    }
}

/// Independently reconstructed ground truth plus the invariant
/// counters. See the module docs for the invariant list.
pub struct Checker {
    engines: BackendEngines,
    oracle_engine: Arc<EvalEngine>,
    /// The checker's own compilation of the scenario's pipeline
    /// registry (always carries the built-in `"default"`).
    pipelines: PipelineSet,
    /// One fresh replica per published checkpoint version.
    replicas: HashMap<u64, Airchitect2>,
    last_version: u64,
    /// Recommendations completed (the server's `served` must agree).
    pub completed_recs: u64,
    /// Every completion seen, expected errors included (the shed
    /// reconciliation counts these against deliveries).
    pub completed_total: u64,
    /// Requests refused inline by the shed policy (the server's `sheds`
    /// must agree).
    pub sheds: u64,
    /// The scenario's configured shed high-water mark (0 = the
    /// unbounded-queue policy; sheds are then a violation outright).
    shed_high_water: usize,
    /// Successful publishes seen (the server's `swaps` must agree).
    pub publishes: u64,
    /// Last answer per exact canonical key, with the version that gave
    /// it — the cross-version repeat detector.
    exact: HashMap<QueryKey, u64>,
    /// Backends seen per backend-stripped canonical key (bit 1 =
    /// analytic, bit 2 = systolic, bit 4 = cascade).
    backend_pairs: HashMap<QueryKey, u8>,
    /// Whether the service under test serves the int8 decoder flavor on
    /// every shard; oracle replicas mirror the same flavor so
    /// bit-identity stays scoped per flavor.
    quantized: bool,
    /// Recommendations completed per normalized pipeline name (the
    /// server's per-pipeline `served` rows must agree).
    served_by_pipeline: BTreeMap<String, u64>,
    coverage: BTreeMap<&'static str, u64>,
}

impl Checker {
    /// A checker with its own oracle engines over `task`, primed with
    /// the version-0 checkpoint the service started from. With
    /// `quantized`, every oracle replica serves the int8 decoder flavor
    /// (adopting a published blob when the checkpoint carries one,
    /// quantizing deterministically otherwise) — exactly what each
    /// shard of an all-quantized service does. `pipelines` must be
    /// compiled from the same configs as the service's registry (the
    /// harness builds both from one recipe).
    pub fn new(
        task: DseTask,
        initial: &ModelCheckpoint,
        quantized: bool,
        pipelines: PipelineSet,
        shed_high_water: usize,
    ) -> Checker {
        let oracle_engine = EvalEngine::shared(task);
        let mut checker = Checker {
            engines: BackendEngines::new(Arc::clone(&oracle_engine)),
            oracle_engine,
            pipelines,
            replicas: HashMap::new(),
            last_version: initial.version,
            completed_recs: 0,
            completed_total: 0,
            sheds: 0,
            shed_high_water,
            publishes: 0,
            exact: HashMap::new(),
            backend_pairs: HashMap::new(),
            quantized,
            served_by_pipeline: BTreeMap::new(),
            coverage: INVARIANTS.iter().map(|&name| (name, 0)).collect(),
        };
        checker.register_replica(initial.version, initial);
        checker
    }

    fn bump(&mut self, invariant: &'static str) {
        *self
            .coverage
            .get_mut(invariant)
            .expect("unknown invariant name") += 1;
    }

    /// Coverage counters in deterministic (alphabetical) order.
    pub fn coverage(&self) -> Vec<(String, u64)> {
        self.coverage
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Builds the fresh oracle replica for a published version,
    /// mirroring the per-shard flavor policy of the service under test.
    fn register_replica(&mut self, version: u64, ckpt: &ModelCheckpoint) {
        let mut replica = Airchitect2::from_checkpoint(Arc::clone(&self.oracle_engine), ckpt)
            .expect("published checkpoints restore by construction");
        if self.quantized {
            if !replica.quantized_decoder() {
                replica.quantize_decoder();
            }
        } else {
            replica.clear_quantized_decoder();
        }
        self.replicas.insert(version, replica);
    }

    /// Checks an observed `model_version` against monotonicity.
    ///
    /// # Errors
    ///
    /// Returns the violation when the version moved backwards.
    pub fn observe_version(&mut self, version: u64) -> Result<(), String> {
        if version < self.last_version {
            return Err(format!(
                "model_version moved backwards: {} after {}",
                version, self.last_version
            ));
        }
        self.last_version = version;
        self.bump("monotonic_version");
        Ok(())
    }

    /// Records a successful publish (admin swap ack or refresh outcome)
    /// of `ckpt` at `version` and builds its oracle replica.
    ///
    /// # Errors
    ///
    /// Returns the violation when the published version does not
    /// strictly advance the last observed one.
    pub fn note_publish(&mut self, version: u64, ckpt: &ModelCheckpoint) -> Result<(), String> {
        if version <= self.last_version {
            return Err(format!(
                "publish acknowledged v{version} but v{} was already live",
                self.last_version
            ));
        }
        self.observe_version(version)?;
        self.publishes += 1;
        self.register_replica(version, ckpt);
        Ok(())
    }

    /// Records a rejected publish while frozen (the expected outcome).
    pub fn note_frozen_rejection(&mut self) {
        self.bump("frozen_rejects_publish");
    }

    /// Records one inline shed answer and checks it was legal.
    ///
    /// # Errors
    ///
    /// Returns the violation when the scenario configured no shed
    /// policy, or the error did not echo the request's id.
    pub fn note_shed(&mut self, req_id: u64, echoed_id: u64, message: &str) -> Result<(), String> {
        if self.shed_high_water == 0 {
            return Err(format!(
                "id {req_id} was shed ({message:?}) but the scenario configured the \
                 unbounded-queue policy"
            ));
        }
        if echoed_id != req_id {
            return Err(format!(
                "shed error echoed id {echoed_id}, expected {req_id}"
            ));
        }
        self.sheds += 1;
        self.bump("shed_accounting");
        Ok(())
    }

    /// The end-of-run shed reconciliation: every delivered
    /// recommendation is either a completion or a counted shed.
    ///
    /// # Errors
    ///
    /// Returns the violation when the books do not balance.
    pub fn check_shed_accounting(&mut self, delivered_recommends: u64) -> Result<(), String> {
        if self.completed_total + self.sheds != delivered_recommends {
            return Err(format!(
                "shed books do not balance: {} completions + {} sheds != {} delivered \
                 recommendations",
                self.completed_total, self.sheds, delivered_recommends
            ));
        }
        Ok(())
    }

    /// Checks one completed shard answer against the oracle for
    /// `live_version` (the version the answering replica was restored
    /// from). Returns a one-line transcript summary.
    ///
    /// # Errors
    ///
    /// Returns the invariant violation.
    pub fn check_completion(
        &mut self,
        req: &RecommendRequest,
        deadline_ns: Option<u64>,
        resp: &Response,
        live_version: u64,
        now_ns: u64,
    ) -> Result<String, String> {
        self.completed_total += 1;
        self.observe_version(live_version)?;
        // deadline expiry happens in the shard, above the recommend
        // kernel — checked against the virtual clock instead
        if let Response::Error { id, message } = resp {
            if message.contains("deadline") {
                if *id != req.id {
                    return Err(format!(
                        "deadline error echoed id {id}, expected {}",
                        req.id
                    ));
                }
                let deadline = deadline_ns.ok_or_else(|| {
                    format!(
                        "id {}: deadline error on a request without a deadline",
                        req.id
                    )
                })?;
                if now_ns < deadline {
                    return Err(format!(
                        "id {}: deadline error at t={now_ns}ns, {}ns before the deadline",
                        req.id,
                        deadline - now_ns
                    ));
                }
                self.bump("deadline_honored");
                return Ok(format!("id={} deadline-expired ok", req.id));
            }
        }
        let replica = self.replicas.get(&live_version).ok_or_else(|| {
            format!("no oracle replica registered for live version {live_version}")
        })?;
        let mut scratch = InferenceScratch::new();
        let expected = recommend_batch_in(
            replica,
            &self.engines,
            &self.pipelines,
            std::slice::from_ref(req),
            &mut scratch,
        )
        .pop()
        .expect("one request, one answer");
        if &expected != resp {
            return Err(format!(
                "id {}: answer diverged from the fresh v{live_version} oracle\n    got:      \
                 {resp:?}\n    expected: {expected:?}",
                req.id
            ));
        }
        let pipeline_covered = pipeline_identity_check(&self.engines, req, resp, replica)?;
        self.bump("bit_identity");
        if self.quantized {
            // the oracle that just agreed bit-for-bit carries the int8
            // flavor: identity was established within the flavor
            self.bump("flavor_scoped_identity");
        }
        if pipeline_covered {
            self.bump("pipeline_identity");
        }
        let Response::Recommendation(rec) = resp else {
            // the oracle agreed this query is an error (zero-dim GEMM,
            // unknown model/backend/pipeline) — bit-identity covered it
            return Ok(format!("id={} expected-error ok", req.id));
        };
        self.completed_recs += 1;
        if rec.backend == "cascade" {
            // the oracle recompute above went through the checker's own
            // staged cascade — a fresh prefilter + escalation over its
            // private analytic and systolic engines — so the bit match
            // just established is the cascade-identity contract
            self.bump("cascade_identity");
        }
        let pipeline_name = req.pipeline.as_deref().unwrap_or(PipelineSet::DEFAULT);
        *self
            .served_by_pipeline
            .entry(pipeline_name.to_string())
            .or_insert(0) += 1;
        let mut notes = String::new();
        if let Some(key) = QueryKey::of(req) {
            if let Some(prev_version) = self.exact.insert(key, live_version) {
                if prev_version != live_version {
                    // a canonical repeat across a swap: the oracle match
                    // above proves the epoch-tagged cache did not leak
                    // the old version's answer
                    self.bump("cache_epoch_isolation");
                    notes.push_str(" cross-version-repeat");
                }
            }
        }
        if let Some(canon) = canon_no_backend(req) {
            let mask = self.backend_pairs.entry(canon).or_insert(0);
            let bit = match rec.backend.as_str() {
                "systolic" => 2u8,
                "cascade" => 4u8,
                _ => 1u8,
            };
            if *mask & bit == 0 {
                *mask |= bit;
                let distinct = mask.count_ones();
                if distinct >= 2 {
                    // another backend answered the same canonical GEMM,
                    // each verified against its own oracle engine
                    self.bump("backend_isolation");
                    notes.push_str(if distinct == 3 {
                        " all-backends"
                    } else {
                        " both-backends"
                    });
                }
            }
        }
        Ok(format!(
            "id={} rec point=({},{}) cost={:016x} v={} {}{}",
            req.id,
            rec.point.pe_idx,
            rec.point.buf_idx,
            rec.cost.to_bits(),
            live_version,
            rec.backend,
            notes
        ))
    }

    /// Cross-checks a wire `stats` snapshot against the checker's own
    /// books. Returns a transcript summary.
    ///
    /// # Errors
    ///
    /// Returns the first counter that disagrees.
    pub fn check_stats(&mut self, s: &ServeStats, expected_frozen: bool) -> Result<String, String> {
        self.observe_version(s.model_version)?;
        if s.served != self.completed_recs {
            return Err(format!(
                "stats served={} but the checker saw {} completed recommendations",
                s.served, self.completed_recs
            ));
        }
        if s.swaps != self.publishes {
            return Err(format!(
                "stats swaps={} but the checker saw {} publishes",
                s.swaps, self.publishes
            ));
        }
        if s.sheds != self.sheds {
            return Err(format!(
                "stats sheds={} but the checker saw {} inline sheds",
                s.sheds, self.sheds
            ));
        }
        if self.sheds > 0 && (s.queue_high_water as usize) < self.shed_high_water {
            return Err(format!(
                "stats queue_high_water={} below the configured shed mark {} despite {} sheds",
                s.queue_high_water, self.shed_high_water, self.sheds
            ));
        }
        for row in &s.pipelines {
            let expected = self.served_by_pipeline.get(&row.name).copied().unwrap_or(0);
            if row.served != expected {
                return Err(format!(
                    "stats pipeline {:?} served={} but the checker saw {expected}",
                    row.name, row.served
                ));
            }
        }
        let reported: u64 = s.pipelines.iter().map(|row| row.served).sum();
        if reported != self.completed_recs {
            return Err(format!(
                "per-pipeline served rows sum to {reported} but {} recommendations completed",
                self.completed_recs
            ));
        }
        if s.frozen != expected_frozen {
            return Err(format!(
                "stats frozen={} but the last acknowledged freeze state was {}",
                s.frozen, expected_frozen
            ));
        }
        let expected_quantized = if self.quantized { s.shards } else { 0 };
        if s.quantized_shards != expected_quantized {
            return Err(format!(
                "stats quantized_shards={} but the scenario configured {}",
                s.quantized_shards, expected_quantized
            ));
        }
        if s.kernel != ai2_tensor::kernel::active().name() {
            return Err(format!(
                "stats kernel={:?} but this process dispatches {:?}",
                s.kernel,
                ai2_tensor::kernel::active().name()
            ));
        }
        Ok(format!(
            "stats ok served={} cache_hits={} swaps={} v={} frozen={} kernel={} q={}",
            s.served,
            s.cache_hits,
            s.swaps,
            s.model_version,
            s.frozen,
            s.kernel,
            s.quantized_shards
        ))
    }

    /// Checks a freeze acknowledgement (version must not move).
    ///
    /// # Errors
    ///
    /// Returns the violation.
    pub fn check_freeze_ack(&mut self, ack: &AdminAck, requested: bool) -> Result<String, String> {
        if ack.op != "freeze" || ack.frozen != requested {
            return Err(format!(
                "unexpected freeze ack {ack:?} (requested {requested})"
            ));
        }
        self.observe_version(ack.model_version)?;
        Ok(format!(
            "freeze ack frozen={} v={}",
            ack.frozen, ack.model_version
        ))
    }

    /// Checks the structural soundness of the run's trace capture:
    /// every parent id resolves, children lie within their parent's
    /// time window, and siblings under one parent never partially
    /// overlap (request roots from different requests may — they run
    /// concurrently by design). Returns a transcript summary.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation.
    pub fn check_trace(&mut self, records: &[ai2_obs::SpanRecord]) -> Result<String, String> {
        let mut by_id: HashMap<u64, &ai2_obs::SpanRecord> = HashMap::new();
        for r in records {
            if r.end_ns < r.start_ns {
                return Err(format!("span {} ({}) ends before it starts", r.id, r.name));
            }
            if by_id.insert(r.id, r).is_some() {
                return Err(format!("duplicate span id {}", r.id));
            }
        }
        let mut children: HashMap<u64, Vec<&ai2_obs::SpanRecord>> = HashMap::new();
        for r in records {
            if r.parent == ai2_obs::NO_PARENT {
                continue;
            }
            let parent = by_id.get(&r.parent).ok_or_else(|| {
                format!(
                    "span {} ({}) has dangling parent {}",
                    r.id, r.name, r.parent
                )
            })?;
            if parent.instant {
                return Err(format!(
                    "span {} ({}) is parented to instant {} ({})",
                    r.id, r.name, parent.id, parent.name
                ));
            }
            if r.start_ns < parent.start_ns || r.end_ns > parent.end_ns {
                return Err(format!(
                    "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                    r.id,
                    r.name,
                    r.start_ns,
                    r.end_ns,
                    parent.id,
                    parent.name,
                    parent.start_ns,
                    parent.end_ns
                ));
            }
            if !r.instant {
                children.entry(r.parent).or_default().push(r);
            }
        }
        for siblings in children.values() {
            for (i, a) in siblings.iter().enumerate() {
                for b in &siblings[i + 1..] {
                    let (first, second) = if a.start_ns <= b.start_ns {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    // strict partial overlap: the later sibling starts
                    // inside the earlier one and outlives it
                    if second.start_ns > first.start_ns
                        && second.start_ns < first.end_ns
                        && second.end_ns > first.end_ns
                    {
                        return Err(format!(
                            "siblings {} ({}) and {} ({}) partially overlap",
                            first.id, first.name, second.id, second.name
                        ));
                    }
                }
            }
        }
        self.bump("trace_well_nested");
        Ok(format!(
            "trace ok {} spans ({} roots)",
            records.len(),
            records
                .iter()
                .filter(|r| r.parent == ai2_obs::NO_PARENT)
                .count()
        ))
    }

    /// Declares the end-of-run drain complete with `outstanding`
    /// requests unanswered (must be zero).
    ///
    /// # Errors
    ///
    /// Returns the dropped-request violation.
    pub fn check_zero_drops(&mut self, outstanding: &[u64]) -> Result<(), String> {
        if !outstanding.is_empty() {
            return Err(format!(
                "{} requests were dropped (never answered): ids {:?}",
                outstanding.len(),
                outstanding
            ));
        }
        self.bump("zero_drops");
        Ok(())
    }
}
