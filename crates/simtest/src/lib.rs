//! `ai2_simtest` — the deterministic simulation harness for the
//! AIrchitect v2 serving stack.
//!
//! TCP-based integration tests can show that the sharded server, the
//! per-backend caches and the hot-swap/refresh loop work on *one*
//! interleaving per run — whichever one the OS scheduler happens to
//! produce. This crate scripts **thousands of adversarial
//! interleavings from a single seed** and replays any failure
//! bit-for-bit:
//!
//! * the service runs with `Driver::Manual` (no shard threads), a
//!   `VirtualClock` (no wall time) and the `VirtualTransport` (no
//!   sockets), so a whole server run is a pure function of
//!   `(seed, scenario, steps)`;
//! * a [`scenario::Scenario`] declares the mix — client query streams
//!   across all three cost backends (analytic, systolic, staged
//!   cascade) and all three objectives, admin
//!   swap/freeze bursts, refresh ticks, deadline pressure, cache-size
//!   pressure, hostile input, stragglers and disconnects;
//! * the [`checker::Checker`] re-derives ground truth after every step
//!   from its own fresh Predictor + EvalEngine oracle and asserts the
//!   core invariants (bit-identical answers per replica version,
//!   monotonic `model_version`, epoch-tagged cache isolation, zero
//!   dropped requests across swaps, per-backend cache isolation,
//!   honored deadlines, frozen registries rejecting publishes);
//! * the `simtest` binary (`--seed`, `--scenarios`, `--steps`,
//!   `--shrink`) runs the curated corpus or randomized soaks and, on
//!   failure, prints the minimal replay command.
//!
//! Dropping a new scenario into [`scenario::corpus`] is one struct
//! literal — every future serving feature inherits this harness instead
//! of writing a bespoke integration test.

pub mod checker;
pub mod harness;
pub mod scenario;

pub use checker::{Checker, INVARIANTS};
pub use harness::{fixture, run_scenario, sim_pipelines, Fixture, SimFailure, SimReport};
pub use scenario::{corpus, Scenario, Weights};
