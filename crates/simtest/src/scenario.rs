//! The scenario DSL: one [`Scenario`] is a named, declarative recipe —
//! service shape, client population, query mix, and a weight per event
//! kind — from which the harness expands a concrete adversarial
//! interleaving using nothing but a seed.
//!
//! Scenarios are data, not code: adding coverage for a new interleaving
//! class is one more entry in [`corpus`], not a bespoke integration
//! test. The curated corpus below is what `cargo test -p ai2-simtest`
//! and the CI `simtest` job replay on every change.

/// Relative weights of the events the driver can pick at each step.
/// A weight of 0 removes the event from the scenario entirely.
#[derive(Debug, Clone, Copy)]
pub struct Weights {
    /// Script a well-formed recommendation on a random client.
    pub submit: u32,
    /// Deliver the front line of a random client's outbox.
    pub deliver: u32,
    /// Run one micro-batch on a random shard.
    pub step: u32,
    /// Advance the virtual clock.
    pub advance: u32,
    /// Admin: swap in an alternate checkpoint (bumped) over the wire.
    pub swap: u32,
    /// Admin: freeze or unfreeze publishing over the wire.
    pub freeze: u32,
    /// Run one synchronous refresh cycle (label + fine-tune + publish).
    pub refresh: u32,
    /// Ask for a `stats` snapshot over the wire and cross-check it.
    pub stats: u32,
    /// Inject hostile input (malformed lines, unknown admin fields,
    /// zero-dimension GEMMs, unknown models/backends).
    pub garbage: u32,
    /// Disconnect a random client mid-conversation.
    pub disconnect: u32,
}

impl Weights {
    /// Sum of all weights (the driver's sampling denominator).
    pub fn total(&self) -> u32 {
        self.submit
            + self.deliver
            + self.step
            + self.advance
            + self.swap
            + self.freeze
            + self.refresh
            + self.stats
            + self.garbage
            + self.disconnect
    }
}

/// The balanced baseline mix: traffic flows, shards step, the clock
/// moves, stats get cross-checked. No admin churn, no hostile input.
const STEADY: Weights = Weights {
    submit: 30,
    deliver: 30,
    step: 25,
    advance: 6,
    swap: 0,
    freeze: 0,
    refresh: 0,
    stats: 4,
    garbage: 0,
    disconnect: 0,
};

/// One named simulation recipe. The harness expands
/// `(scenario, seed, steps)` into a deterministic event sequence; two
/// runs of the same triple produce byte-identical checker transcripts.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Corpus name (the `--scenarios` selector).
    pub name: &'static str,
    /// One-line description for `--list` and the README.
    pub about: &'static str,
    /// Worker shards.
    pub shards: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Response-cache entries (small values force eviction pressure).
    pub cache_capacity: usize,
    /// Client connections (an extra admin connection is always opened).
    pub clients: usize,
    /// Steps the corpus runs this scenario for (overridable with
    /// `--steps`).
    pub default_steps: usize,
    /// Queries are drawn from `nth_query(0..universe)`: a small
    /// universe guarantees canonical repeats (cache hits, cross-swap
    /// re-asks).
    pub universe: u64,
    /// Include whole-model zoo queries in the mix.
    pub models: bool,
    /// Randomly route queries to the systolic backend as well as the
    /// analytic one.
    pub mixed_backends: bool,
    /// Add the staged cascade backend to the mix: submissions split
    /// roughly three ways between analytic, systolic, and
    /// `"backend":"cascade"`, so the same canonical GEMM is answered
    /// through all three per-backend caches (implies the mixed routing;
    /// `mixed_backends` is ignored when set).
    pub cascade_backends: bool,
    /// Per-request deadline each query carries.
    pub deadline_ms: Option<u64>,
    /// Upper bound on injected delivery delay, milliseconds.
    pub max_delay_ms: u64,
    /// Upper bound on one clock-advance event, milliseconds.
    pub max_advance_ms: u64,
    /// Client 0 is a straggler: every line it sends is delayed by the
    /// full `max_delay_ms`.
    pub straggler: bool,
    /// Serve the **int8-quantized decoder flavor** on every shard: the
    /// service runs with all shards listed in
    /// `ServeConfig::quantized_shards`, the initial and swapped
    /// checkpoints carry stored int8 blobs, and the checker's oracle
    /// replicas quantize identically — bit-identity is checked *within*
    /// the flavor, never across flavors.
    pub quantized: bool,
    /// Register the harness's `"staged"` pipeline
    /// (predict → refine → verify) alongside the built-in `"default"`
    /// and route roughly half of all GEMM submissions through it. The
    /// checker's oracle compiles the identical [`PipelineSet`], so
    /// staged answers are bit-checked too, and the `pipeline_identity`
    /// invariant additionally pins default answers to the pre-pipeline
    /// one-shot kernel and staged answers to the never-worse contract.
    pub pipelines: bool,
    /// Admission control: queue depth at which the service sheds
    /// instead of queueing (`0` keeps the unbounded-queue policy). Maps
    /// to `ServeConfig::overload`.
    pub shed_high_water: usize,
    /// Event weights.
    pub weights: Weights,
}

impl Scenario {
    /// Looks a corpus scenario up by name.
    pub fn by_name(name: &str) -> Option<&'static Scenario> {
        corpus().iter().find(|s| s.name == name)
    }
}

/// The curated regression corpus, in documentation order.
pub fn corpus() -> &'static [Scenario] {
    static CORPUS: &[Scenario] = &[
        Scenario {
            name: "steady-mixed",
            about: "baseline: mixed GEMM+model traffic on both backends, no admin churn",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 3,
            default_steps: 260,
            universe: 10,
            models: true,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: STEADY,
        },
        Scenario {
            name: "swap-under-load",
            about: "checkpoint swaps keep landing while queries are queued and in flight",
            shards: 2,
            max_batch: 4,
            cache_capacity: 64,
            clients: 3,
            default_steps: 300,
            universe: 8,
            models: false,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                swap: 6,
                stats: 5,
                ..STEADY
            },
        },
        Scenario {
            name: "freeze-then-swap",
            about: "freeze bursts gate swaps; unfreeze lets them through again",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 2,
            default_steps: 260,
            universe: 8,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                swap: 8,
                freeze: 8,
                stats: 4,
                ..STEADY
            },
        },
        Scenario {
            name: "deadline-storm",
            about: "backend-mixed traffic under tight deadlines and a fast-moving clock",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 4,
            default_steps: 280,
            universe: 12,
            models: false,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: Some(4),
            max_delay_ms: 2,
            max_advance_ms: 6,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                advance: 18,
                ..STEADY
            },
        },
        Scenario {
            name: "refresh-under-load",
            about: "active-learning refresh cycles publish new versions while traffic flows",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 3,
            default_steps: 240,
            universe: 10,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                refresh: 4,
                stats: 5,
                ..STEADY
            },
        },
        Scenario {
            name: "refresh-while-frozen",
            about: "an incident freeze must reject refresh publishes without touching serving",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 2,
            default_steps: 220,
            universe: 8,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                refresh: 6,
                freeze: 6,
                stats: 4,
                ..STEADY
            },
        },
        Scenario {
            name: "cache-thrash",
            about: "a 4-entry response cache under a repeating universe plus swaps: eviction and flush churn",
            shards: 2,
            max_batch: 4,
            cache_capacity: 4,
            clients: 3,
            default_steps: 300,
            universe: 8,
            models: false,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                submit: 36,
                deliver: 36,
                swap: 4,
                ..STEADY
            },
        },
        Scenario {
            name: "slow-client-straggler",
            about: "one client's lines arrive heavily delayed; disconnects mid-compute must drop nothing",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 3,
            default_steps: 260,
            universe: 10,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 40,
            max_advance_ms: 10,
            straggler: true,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                advance: 14,
                disconnect: 2,
                ..STEADY
            },
        },
        Scenario {
            name: "admin-burst",
            about: "hostile + admin storm: malformed lines, unknown admin fields, swap/freeze churn",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 2,
            default_steps: 240,
            universe: 8,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                submit: 16,
                deliver: 16,
                swap: 10,
                freeze: 8,
                stats: 10,
                garbage: 12,
                ..STEADY
            },
        },
        Scenario {
            name: "single-shard-serial",
            about: "shards=1, max_batch=1: fully serialized compute behind every interleaving",
            shards: 1,
            max_batch: 1,
            cache_capacity: 16,
            clients: 2,
            default_steps: 240,
            universe: 8,
            models: true,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                swap: 3,
                garbage: 4,
                ..STEADY
            },
        },
        Scenario {
            name: "quantized-swap",
            about: "all shards serve the int8 decoder flavor; flavored checkpoints swap and refresh under load",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 3,
            default_steps: 280,
            universe: 10,
            models: true,
            mixed_backends: true,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: true,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                swap: 5,
                refresh: 3,
                stats: 5,
                ..STEADY
            },
        },
        Scenario {
            name: "pipeline-mixed",
            about: "default and staged (predict→refine→verify) pipelines interleave: per-pipeline caching, one-shot identity, staged never-worse",
            shards: 2,
            max_batch: 8,
            cache_capacity: 32,
            clients: 3,
            default_steps: 220,
            universe: 8,
            models: true,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: true,
            shed_high_water: 0,
            weights: Weights {
                swap: 3,
                stats: 5,
                garbage: 3,
                ..STEADY
            },
        },
        Scenario {
            name: "cascade-mixed",
            about: "analytic, systolic, and staged-cascade queries interleave across swaps: three-way per-backend cache isolation, cascade answers bit-checked against a fresh prefilter+escalate oracle",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 3,
            default_steps: 240,
            universe: 8,
            models: true,
            mixed_backends: true,
            cascade_backends: true,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 0,
            weights: Weights {
                swap: 4,
                stats: 5,
                garbage: 3,
                ..STEADY
            },
        },
        Scenario {
            name: "connect-flood",
            about: "a burst of clients floods submissions far faster than shards drain; shed admission keeps the queue bounded",
            shards: 2,
            max_batch: 4,
            cache_capacity: 64,
            clients: 8,
            default_steps: 300,
            universe: 24,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 6,
            weights: Weights {
                submit: 40,
                deliver: 40,
                step: 8,
                stats: 6,
                ..STEADY
            },
        },
        Scenario {
            name: "slow-loris-straggler",
            about: "heavily delayed dribbling clients plus disconnects: partial progress must stall only the straggler, never the books",
            shards: 2,
            max_batch: 8,
            cache_capacity: 64,
            clients: 4,
            default_steps: 280,
            universe: 10,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 80,
            max_advance_ms: 12,
            straggler: true,
            quantized: false,
            pipelines: false,
            shed_high_water: 8,
            weights: Weights {
                advance: 16,
                disconnect: 3,
                garbage: 4,
                stats: 5,
                ..STEADY
            },
        },
        Scenario {
            name: "shed-under-saturation",
            about: "a tiny high-water mark under saturating load: sheds must be deterministic, answered inline, and reconcile in stats",
            shards: 1,
            max_batch: 2,
            cache_capacity: 16,
            clients: 3,
            default_steps: 280,
            universe: 16,
            models: false,
            mixed_backends: false,
            cascade_backends: false,
            deadline_ms: None,
            max_delay_ms: 0,
            max_advance_ms: 2,
            straggler: false,
            quantized: false,
            pipelines: false,
            shed_high_water: 3,
            weights: Weights {
                submit: 42,
                deliver: 42,
                step: 6,
                stats: 8,
                ..STEADY
            },
        },
    ];
    CORPUS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_resolvable() {
        let corpus = corpus();
        assert!(corpus.len() >= 10, "the corpus promises ~10 scenarios");
        for (i, s) in corpus.iter().enumerate() {
            assert!(
                Scenario::by_name(s.name).is_some(),
                "{} unresolvable",
                s.name
            );
            assert!(
                corpus[..i].iter().all(|t| t.name != s.name),
                "duplicate scenario name {}",
                s.name
            );
            assert!(s.weights.total() > 0);
            assert!(s.clients >= 1 && s.shards >= 1 && s.universe >= 1);
            assert!(s.default_steps >= 50);
        }
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }
}
