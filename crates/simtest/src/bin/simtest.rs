//! Deterministic simulation runner for the serving stack.
//!
//! ```text
//! simtest [--seed N]             base seed (default 1)
//!         [--scenarios a,b|all]  corpus scenarios to run (default all)
//!         [--steps N]            override each scenario's default step count
//!         [--shrink]             on failure, minimize the step count first
//!         [--soak-secs S]        keep running fresh seeds for ~S seconds
//!         [--transcript DIR]     write each run's checker transcript to DIR
//!         [--trace-out DIR]      write each run's Chrome trace JSON to DIR
//!                                (TRACE_{scenario}_{seed}_{steps}.json;
//!                                byte-identical across replays)
//!         [--list]               print the corpus and exit
//! ```
//!
//! Every run is a pure function of `(seed, scenario, steps)`. On
//! failure the runner prints the **minimal replay command** — paste it
//! to reproduce the exact event sequence, transcript and violation.

use std::time::Instant;

use ai2_simtest::{corpus, run_scenario, Scenario};

struct Args {
    seed: u64,
    scenarios: Vec<&'static Scenario>,
    steps: Option<usize>,
    shrink: bool,
    soak_secs: Option<u64>,
    transcript_dir: Option<String>,
    trace_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        scenarios: corpus().iter().collect(),
        steps: None,
        shrink: false,
        soak_secs: None,
        transcript_dir: None,
        trace_dir: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} takes a value", argv[*i - 1]))
            .clone()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => args.seed = value(&mut i).parse().expect("--seed N"),
            "--scenarios" => {
                let spec = value(&mut i);
                if spec != "all" {
                    args.scenarios = spec
                        .split(',')
                        .map(|name| {
                            Scenario::by_name(name.trim()).unwrap_or_else(|| {
                                eprintln!("unknown scenario {name:?}; known scenarios:");
                                for s in corpus() {
                                    eprintln!("  {}", s.name);
                                }
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
            }
            "--steps" => args.steps = Some(value(&mut i).parse().expect("--steps N")),
            "--shrink" => args.shrink = true,
            "--soak-secs" => args.soak_secs = Some(value(&mut i).parse().expect("--soak-secs S")),
            "--transcript" => args.transcript_dir = Some(value(&mut i)),
            "--trace-out" => args.trace_dir = Some(value(&mut i)),
            "--list" => {
                for s in corpus() {
                    println!("{:24} {}", s.name, s.about);
                }
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?} (see src/bin/simtest.rs for usage)"),
        }
        i += 1;
    }
    args
}

/// Runs one `(scenario, seed)` pair, reporting and optionally shrinking
/// a failure. Returns whether it passed.
fn run_one(
    sc: &Scenario,
    seed: u64,
    steps: usize,
    shrink: bool,
    dir: Option<&str>,
    trace_dir: Option<&str>,
) -> bool {
    let started = Instant::now();
    let report = run_scenario(sc, seed, steps);
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create --transcript dir");
        let path = format!("{dir}/{}_{seed}_{steps}.transcript", sc.name);
        std::fs::write(&path, &report.transcript).expect("write transcript");
    }
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).expect("create --trace-out dir");
        let path = format!("{dir}/TRACE_{}_{seed}_{steps}.json", sc.name);
        std::fs::write(&path, &report.trace_json).expect("write trace");
    }
    match &report.failure {
        None => {
            let covered = report
                .coverage
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(name, _)| name.as_str())
                .collect::<Vec<_>>()
                .join(",");
            println!(
                "PASS {:24} seed={seed} steps={steps} ({:.2}s) covered: {covered}",
                sc.name,
                started.elapsed().as_secs_f64()
            );
            true
        }
        Some(failure) => {
            eprintln!(
                "FAIL {:24} seed={seed} at step {}: {}",
                sc.name, failure.step, failure.message
            );
            let mut minimal = report.replay_command();
            if shrink && failure.step < steps {
                // the event sequence is a prefix-deterministic function
                // of the seed, so the earliest failing step bounds the
                // minimal run exactly; verify by replaying
                let shrunk = run_scenario(sc, seed, failure.step);
                match &shrunk.failure {
                    Some(f2) if f2.step == failure.step => {
                        minimal = shrunk.replay_command();
                        eprintln!("shrunk: reproduces with --steps {}", failure.step);
                    }
                    _ => eprintln!("shrink could not reproduce at fewer steps; keeping full run"),
                }
            }
            // transcript tail for context
            let tail: Vec<&str> = report.transcript.lines().rev().take(12).collect();
            for line in tail.iter().rev() {
                eprintln!("  | {line}");
            }
            eprintln!("replay: {minimal}");
            false
        }
    }
}

fn main() {
    let args = parse_args();
    let mut failures = 0usize;
    if let Some(soak_secs) = args.soak_secs {
        // randomized soak: fresh seeds derived from the base seed until
        // the budget is spent; every (seed, scenario, steps) is printed
        // *before* it runs so a hang or crash is still replayable
        let deadline = Instant::now() + std::time::Duration::from_secs(soak_secs);
        let mut seed = args.seed;
        let mut runs = 0usize;
        while Instant::now() < deadline {
            for sc in &args.scenarios {
                let steps = args.steps.unwrap_or(sc.default_steps);
                println!(
                    "soak: simtest --seed {seed} --scenarios {} --steps {steps}",
                    sc.name
                );
                if !run_one(
                    sc,
                    seed,
                    steps,
                    args.shrink,
                    args.transcript_dir.as_deref(),
                    args.trace_dir.as_deref(),
                ) {
                    failures += 1;
                }
                runs += 1;
                if Instant::now() >= deadline {
                    break;
                }
            }
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        println!("soak: {runs} runs, {failures} failures");
    } else {
        for sc in &args.scenarios {
            let steps = args.steps.unwrap_or(sc.default_steps);
            if !run_one(
                sc,
                args.seed,
                steps,
                args.shrink,
                args.transcript_dir.as_deref(),
                args.trace_dir.as_deref(),
            ) {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
