//! The simulation driver: expands `(scenario, seed, steps)` into a
//! concrete event sequence over a manually stepped [`RecommendService`]
//! on a [`VirtualClock`] and a [`VirtualTransport`], running the
//! [`Checker`] after every step.
//!
//! Nothing in a run touches wall time, real sockets, or thread
//! scheduling, so the transcript — every event, every completion, every
//! invariant check — is a pure function of the triple. A failing run
//! prints a replay command that reproduces it bit-for-bit.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ai2_bench::queries::nth_query;
use ai2_dse::pipeline::{RefineMethod, StageCfg};
use ai2_dse::{
    BackendId, DseDataset, DseTask, EvalEngine, GenerateConfig, PipelineCfg, PipelineSet,
};
use ai2_serve::protocol::encode_line;
use ai2_serve::{
    AdminRequest, Clock, Delivery, Driver, OverloadPolicy, Query, RecommendRequest,
    RecommendService, RefreshConfig, Request, Response, ServeConfig, Transport, VirtualClock,
    VirtualTransport,
};
use airchitect::train::TrainConfig;
use airchitect::{Airchitect2, ModelCheckpoint, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checker::Checker;
use crate::scenario::Scenario;

// --------------------------------------------------------------------
// shared fixture

/// The expensive, fully deterministic part of every run: one trained
/// base checkpoint (version 0) and two differently seeded alternates
/// the swap events publish, saved under a per-process temp directory
/// (checkpoint *content* is deterministic, but two concurrent simtest
/// processes must not tear each other's reads mid-write; paths never
/// appear in transcripts, so replay identity is unaffected).
pub struct Fixture {
    /// The DSE task every engine in the simulation is built over.
    pub task: DseTask,
    /// The checkpoint the service starts from (version 0).
    pub base: ModelCheckpoint,
    /// Alternate trained checkpoints for swap events.
    pub alts: Vec<ModelCheckpoint>,
    /// Where the alternates are saved (server-side `swap` paths).
    pub alt_paths: Vec<PathBuf>,
    /// `base` with a stored int8 decoder blob (quantized scenarios
    /// start from this flavor).
    pub base_q: ModelCheckpoint,
    /// The alternates with stored int8 decoder blobs.
    pub alts_q: Vec<ModelCheckpoint>,
    /// Where the flavored alternates are saved (quantized-scenario
    /// `swap` paths).
    pub alt_paths_q: Vec<PathBuf>,
}

/// The pipeline registry a scenario runs under. With `pipelines` off
/// this is just the built-in `"default"`; with it on, a `"staged"`
/// predict → refine(annealing) → verify(systolic) graph is registered
/// alongside. Called twice per run — once for the service's
/// [`ServeConfig`], once for the checker's oracle — so both sides
/// compile the identical recipe.
pub fn sim_pipelines(enabled: bool) -> PipelineSet {
    if !enabled {
        return PipelineSet::default();
    }
    PipelineSet::with(&[PipelineCfg {
        name: "staged".into(),
        stages: vec![
            StageCfg::Predict { backend: None },
            StageCfg::Refine {
                method: RefineMethod::Annealing,
                budget: 16,
                seed: 3,
                backend: None,
            },
            StageCfg::Verify {
                k: 2,
                backend: BackendId::Systolic,
            },
        ],
    }])
    .expect("the harness pipeline recipe compiles")
}

/// The process-wide fixture (trained once, shared by every scenario).
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let task = DseTask::table_i_default();
        let train = |gen_seed: u64, model_seed: u64, samples: usize| -> ModelCheckpoint {
            let ds = DseDataset::generate(
                &task,
                &GenerateConfig {
                    num_samples: samples,
                    seed: gen_seed,
                    threads: 2,
                    ..GenerateConfig::default()
                },
            );
            let engine = EvalEngine::shared(task.clone());
            let mut model = Airchitect2::with_engine(
                &ModelConfig {
                    seed: model_seed,
                    ..ModelConfig::tiny()
                },
                engine,
                &ds,
            );
            model.fit(&ds, &TrainConfig::quick());
            model.checkpoint()
        };
        let base = train(33, 7, 50);
        let alts = vec![train(77, 99, 60), train(55, 123, 60)];
        let dir = std::env::temp_dir().join(format!("ai2_simtest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create simtest fixture dir");
        let alt_paths: Vec<PathBuf> = alts
            .iter()
            .enumerate()
            .map(|(i, ckpt)| {
                let path = dir.join(format!("alt{i}.json"));
                ckpt.save(&path).expect("save fixture checkpoint");
                path
            })
            .collect();
        let base_q = base.clone().quantized();
        let alts_q: Vec<ModelCheckpoint> =
            alts.iter().map(|ckpt| ckpt.clone().quantized()).collect();
        let alt_paths_q: Vec<PathBuf> = alts_q
            .iter()
            .enumerate()
            .map(|(i, ckpt)| {
                let path = dir.join(format!("alt{i}_q.json"));
                ckpt.save(&path).expect("save flavored fixture checkpoint");
                path
            })
            .collect();
        Fixture {
            task,
            base,
            alts,
            alt_paths,
            base_q,
            alts_q,
            alt_paths_q,
        }
    })
}

// --------------------------------------------------------------------
// reports

/// Why (and when) a run failed.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// 1-based step the violation surfaced at (`steps + 1` = the
    /// end-of-run drain).
    pub step: usize,
    /// The invariant violation.
    pub message: String,
}

/// Everything one run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed the event sequence was expanded from.
    pub seed: u64,
    /// Steps requested.
    pub steps: usize,
    /// The full checker transcript (deterministic, byte-for-byte).
    pub transcript: String,
    /// The run's span capture as Chrome `trace_event` JSON — every run
    /// traces (span ids are allocated in admission order and timestamps
    /// come off the virtual clock, so two replays of the same triple
    /// produce **byte-identical** trace files).
    pub trace_json: String,
    /// Invariant coverage counters, alphabetical.
    pub coverage: Vec<(String, u64)>,
    /// The first invariant violation, if any.
    pub failure: Option<SimFailure>,
}

impl SimReport {
    /// Whether the run completed with no invariant violation.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// The command that replays this run bit-for-bit.
    pub fn replay_command(&self) -> String {
        format!(
            "simtest --seed {} --scenarios {} --steps {}",
            self.seed, self.scenario, self.steps
        )
    }
}

// --------------------------------------------------------------------
// the driver

/// What a scripted line will be when it is delivered.
enum LineMeta {
    Recommend {
        id: u64,
        req: RecommendRequest,
    },
    Stats {
        id: u64,
    },
    Swap {
        id: u64,
        alt: usize,
    },
    Freeze {
        id: u64,
        frozen: bool,
    },
    /// A line that must bounce off the decoder with the canonical
    /// malformed-line error.
    Malformed,
}

struct PendingInfo {
    req: RecommendRequest,
    deadline_ns: Option<u64>,
}

struct SimDriver<'s> {
    sc: &'s Scenario,
    rng: StdRng,
    clock: Arc<VirtualClock>,
    service: RecommendService,
    vt: VirtualTransport,
    checker: Checker,
    /// Per-connection script metadata, mirroring the transport outbox.
    meta: Vec<VecDeque<LineMeta>>,
    pending: HashMap<u64, PendingInfo>,
    /// Recommendation lines actually delivered to the endpoint
    /// (admitted + shed) — the drain's shed-accounting denominator.
    delivered_recs: u64,
    next_id: u64,
    expected_frozen: bool,
    transcript: Vec<String>,
}

/// Runs one scenario for `steps` seeded events plus the end-of-run
/// drain, checking every invariant along the way.
pub fn run_scenario(sc: &Scenario, seed: u64, steps: usize) -> SimReport {
    let fx = fixture();
    let clock = Arc::new(VirtualClock::new());
    let initial = if sc.quantized {
        fx.base_q.clone()
    } else {
        fx.base.clone()
    };
    let service = RecommendService::start_with(
        ServeConfig {
            shards: sc.shards,
            max_batch: sc.max_batch,
            cache_capacity: sc.cache_capacity,
            replay_capacity: 4096,
            refresh: Some(RefreshConfig {
                min_buffer: 6,
                keep_fraction: 0.5,
                train: TrainConfig {
                    stage2_epochs: 4,
                    batch_size: 8,
                    lr_stage2: 5e-4,
                    ..TrainConfig::quick()
                },
                interval: Duration::from_secs(3600),
            }),
            driver: Driver::Manual,
            quantized_shards: if sc.quantized {
                (0..sc.shards).collect()
            } else {
                Vec::new()
            },
            pipelines: sim_pipelines(sc.pipelines),
            overload: if sc.shed_high_water > 0 {
                OverloadPolicy::Shed {
                    high_water: sc.shed_high_water,
                }
            } else {
                OverloadPolicy::Queue
            },
        },
        EvalEngine::shared(fx.task.clone()),
        initial.clone(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    // every run traces: the drain checks the span tree's structure
    // (`trace_well_nested`) and the capture rides along in the report
    // for replay byte-identity checks
    service.set_tracing(true);
    let mut vt = VirtualTransport::new();
    vt.bind().expect("virtual transport bind is infallible");
    vt.run(service.endpoint())
        .expect("virtual transport run is infallible");
    let mut driver = SimDriver {
        rng: StdRng::seed_from_u64(seed),
        clock,
        checker: Checker::new(
            fx.task.clone(),
            &initial,
            sc.quantized,
            sim_pipelines(sc.pipelines),
            sc.shed_high_water,
        ),
        meta: (0..sc.clients + 1).map(|_| VecDeque::new()).collect(),
        pending: HashMap::new(),
        delivered_recs: 0,
        next_id: 1,
        expected_frozen: false,
        transcript: vec![format!(
            "# scenario={} seed={seed} steps={steps} shards={} clients={} cache={}",
            sc.name, sc.shards, sc.clients, sc.cache_capacity
        )],
        sc,
        service,
        vt,
    };
    for _ in 0..sc.clients + 1 {
        driver.vt.open(); // clients 0..N-1 plus the admin connection N
    }

    let mut failure = None;
    for step in 1..=steps {
        if let Err(message) = driver.run_step(step) {
            driver
                .transcript
                .push(format!("[{step:05}] FAIL: {message}"));
            failure = Some(SimFailure { step, message });
            break;
        }
    }
    if failure.is_none() {
        if let Err(message) = driver.drain(steps + 1) {
            driver
                .transcript
                .push(format!("[{:05}] FAIL: {message}", steps + 1));
            failure = Some(SimFailure {
                step: steps + 1,
                message,
            });
        }
    }
    let coverage = driver.checker.coverage();
    for (name, count) in &coverage {
        driver.transcript.push(format!("# coverage {name}={count}"));
    }
    driver.transcript.push(format!(
        "# verdict {}",
        if failure.is_none() { "PASS" } else { "FAIL" }
    ));
    let transcript = driver.transcript.join("\n") + "\n";
    let trace_json = driver.service.trace_json();
    driver.service.shutdown();
    SimReport {
        scenario: sc.name.to_string(),
        seed,
        steps,
        transcript,
        trace_json,
        coverage,
        failure,
    }
}

impl SimDriver<'_> {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn admin_conn(&self) -> usize {
        self.sc.clients
    }

    /// A connected client connection, rng-chosen; `None` when every
    /// client has disconnected.
    fn pick_client(&mut self) -> Option<usize> {
        let alive: Vec<usize> = (0..self.sc.clients)
            .filter(|&c| self.vt.connected(c))
            .collect();
        if alive.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..alive.len() as u64) as usize;
        Some(alive[i])
    }

    fn log(&mut self, step: usize, line: String) {
        self.transcript.push(format!("[{step:05}] {line}"));
    }

    fn run_step(&mut self, step: usize) -> Result<(), String> {
        let w = self.sc.weights;
        let mut pick = self.rng.random_range(0..w.total()) as i64;
        let mut chosen = "submit";
        for (name, weight) in [
            ("submit", w.submit),
            ("deliver", w.deliver),
            ("step", w.step),
            ("advance", w.advance),
            ("swap", w.swap),
            ("freeze", w.freeze),
            ("refresh", w.refresh),
            ("stats", w.stats),
            ("garbage", w.garbage),
            ("disconnect", w.disconnect),
        ] {
            pick -= i64::from(weight);
            if pick < 0 {
                chosen = name;
                break;
            }
        }
        match chosen {
            "submit" => self.ev_submit(step),
            "deliver" => self.ev_deliver(step),
            "step" => self.ev_step_shard(step),
            "advance" => self.ev_advance(step),
            "swap" => self.ev_swap(step),
            "freeze" => self.ev_freeze(step),
            "refresh" => self.ev_refresh(step),
            "stats" => self.ev_stats(step),
            "garbage" => self.ev_garbage(step),
            _ => self.ev_disconnect(step),
        }
    }

    // -- events -------------------------------------------------------

    fn ev_submit(&mut self, step: usize) -> Result<(), String> {
        let Some(conn) = self.pick_client() else {
            self.log(step, "submit: all clients disconnected".into());
            return Ok(());
        };
        let n = self.rng.random_range(0..self.sc.universe);
        let backend = if self.sc.cascade_backends {
            // three-way split: the staged cascade joins the mix, so the
            // same canonical GEMM lands in all three per-backend caches
            match self.rng.random_range(0..3u64) {
                0 => Some("cascade"),
                1 => Some("systolic"),
                _ => None,
            }
        } else if self.sc.mixed_backends && self.rng.random_bool(0.5) {
            Some("systolic")
        } else {
            None
        };
        let pipeline = if self.sc.pipelines && self.rng.random_bool(0.5) {
            Some("staged")
        } else {
            None
        };
        let mut req = nth_query(n, self.sc.models, self.sc.deadline_ms, backend, pipeline);
        req.id = self.fresh_id();
        let delay_ms = if self.sc.straggler && conn == 0 {
            self.sc.max_delay_ms
        } else if self.sc.max_delay_ms > 0 {
            self.rng.random_range(0..=self.sc.max_delay_ms)
        } else {
            0
        };
        let not_before = self.clock.now_ns() + delay_ms * 1_000_000;
        self.vt.enqueue(
            conn,
            encode_line(&Request::Recommend(req.clone())),
            not_before,
        );
        let id = req.id;
        let pipe_note = match req.pipeline.as_deref() {
            Some(name) => format!(" pipeline={name}"),
            None => String::new(),
        };
        self.meta[conn].push_back(LineMeta::Recommend { id, req });
        self.log(
            step,
            format!("submit conn={conn} id={id} n={n} delay_ms={delay_ms}{pipe_note}"),
        );
        Ok(())
    }

    fn ev_deliver(&mut self, step: usize) -> Result<(), String> {
        let eligible: Vec<usize> = (0..self.vt.conns())
            .filter(|&c| self.vt.held_on(c) > 0)
            .collect();
        if eligible.is_empty() {
            self.log(step, "deliver: nothing held".into());
            return Ok(());
        }
        let conn = eligible[self.rng.random_range(0..eligible.len() as u64) as usize];
        let line = self.deliver_one(conn)?;
        self.log(step, line);
        Ok(())
    }

    fn ev_step_shard(&mut self, step: usize) -> Result<(), String> {
        let shard = self.rng.random_range(0..self.sc.shards as u64) as usize;
        let ran = self.service.step_shard(shard);
        self.log(
            step,
            format!("shard={shard} {}", if ran { "batch" } else { "idle" }),
        );
        for line in self.poll_completions()? {
            self.log(step, line);
        }
        Ok(())
    }

    fn ev_advance(&mut self, step: usize) -> Result<(), String> {
        let ms = self.rng.random_range(1..=self.sc.max_advance_ms.max(1));
        let now = self.clock.advance_ms(ms);
        self.log(step, format!("advance +{ms}ms t={now}ns"));
        Ok(())
    }

    /// The alternate checkpoint a swap publishes, in the scenario's
    /// flavor (quantized scenarios swap flavored files so the published
    /// blob — not a re-quantization — is what shards restore).
    fn alt_ckpt(&self, alt: usize) -> &'static ModelCheckpoint {
        if self.sc.quantized {
            &fixture().alts_q[alt]
        } else {
            &fixture().alts[alt]
        }
    }

    fn ev_swap(&mut self, step: usize) -> Result<(), String> {
        let alt = self.rng.random_range(0..fixture().alts.len() as u64) as usize;
        let id = self.fresh_id();
        let admin = self.admin_conn();
        let path = if self.sc.quantized {
            &fixture().alt_paths_q[alt]
        } else {
            &fixture().alt_paths[alt]
        };
        self.vt.enqueue(
            admin,
            encode_line(&Request::Admin(AdminRequest::Swap {
                id,
                path: path.to_string_lossy().into_owned(),
                bump: Some(true),
            })),
            0,
        );
        self.meta[admin].push_back(LineMeta::Swap { id, alt });
        let line = self.deliver_one(admin)?;
        self.log(step, format!("swap alt={alt} → {line}"));
        Ok(())
    }

    fn ev_freeze(&mut self, step: usize) -> Result<(), String> {
        let frozen = self.rng.random_bool(0.5);
        let id = self.fresh_id();
        let admin = self.admin_conn();
        self.vt.enqueue(
            admin,
            encode_line(&Request::Admin(AdminRequest::Freeze { id, frozen })),
            0,
        );
        self.meta[admin].push_back(LineMeta::Freeze { id, frozen });
        let line = self.deliver_one(admin)?;
        self.log(step, line);
        Ok(())
    }

    fn ev_refresh(&mut self, step: usize) -> Result<(), String> {
        match self.service.refresh_now() {
            Ok(outcome) => {
                if self.expected_frozen {
                    return Err(format!(
                        "refresh published v{} while the registry was frozen",
                        outcome.version
                    ));
                }
                let published = self.service.current_checkpoint();
                self.checker.note_publish(outcome.version, &published)?;
                self.log(
                    step,
                    format!(
                        "refresh published v{} replayed={} trained={}",
                        outcome.version, outcome.replayed, outcome.trained_on
                    ),
                );
            }
            Err(reason) => {
                if self.expected_frozen {
                    if !reason.contains("frozen") {
                        return Err(format!(
                            "refresh while frozen failed for the wrong reason: {reason}"
                        ));
                    }
                    self.checker.note_frozen_rejection();
                }
                self.log(step, format!("refresh skipped: {reason}"));
            }
        }
        Ok(())
    }

    fn ev_stats(&mut self, step: usize) -> Result<(), String> {
        let id = self.fresh_id();
        let admin = self.admin_conn();
        self.vt.enqueue(
            admin,
            encode_line(&Request::Admin(AdminRequest::Stats { id })),
            0,
        );
        self.meta[admin].push_back(LineMeta::Stats { id });
        let line = self.deliver_one(admin)?;
        self.log(step, line);
        Ok(())
    }

    fn ev_garbage(&mut self, step: usize) -> Result<(), String> {
        let Some(conn) = self.pick_client() else {
            self.log(step, "garbage: all clients disconnected".into());
            return Ok(());
        };
        let variant = self.rng.random_range(0..6u64);
        let (desc, line, meta) = match variant {
            0 => ("raw", "{not json}".to_string(), LineMeta::Malformed),
            1 => (
                "unknown-admin-field",
                r#"{"Swap":{"id":1,"path":"x.json","bmup":true}}"#.to_string(),
                LineMeta::Malformed,
            ),
            // the rest parse fine and must be answered with the exact
            // oracle error by the shard path
            _ => {
                let id = self.fresh_id();
                let mut req = nth_query(0, false, self.sc.deadline_ms, None, None);
                req.id = id;
                let desc = match variant {
                    2 => {
                        req.query = Query::Gemm {
                            m: 0,
                            n: 8,
                            k: 8,
                            dataflow: "ws".into(),
                        };
                        "zero-dim-gemm"
                    }
                    3 => {
                        req.query = Query::Model {
                            name: "skynet".into(),
                        };
                        "unknown-model"
                    }
                    4 => {
                        req.backend = Some("rtl".into());
                        "unknown-backend"
                    }
                    _ => {
                        req.pipeline = Some("warp".into());
                        "unknown-pipeline"
                    }
                };
                (
                    desc,
                    encode_line(&Request::Recommend(req.clone())),
                    LineMeta::Recommend { id, req },
                )
            }
        };
        self.vt.enqueue(conn, line, 0);
        self.meta[conn].push_back(meta);
        self.log(step, format!("garbage conn={conn} kind={desc}"));
        Ok(())
    }

    fn ev_disconnect(&mut self, step: usize) -> Result<(), String> {
        let Some(conn) = self.pick_client() else {
            self.log(step, "disconnect: all clients already gone".into());
            return Ok(());
        };
        // undelivered lines vanish with the connection; their requests
        // were never admitted (pending entries are created only at
        // delivery), so dropping the script metadata is the whole job
        for meta in self.meta[conn].drain(..) {
            if let LineMeta::Recommend { id, .. } = meta {
                debug_assert!(
                    !self.pending.contains_key(&id),
                    "an undelivered line cannot have been admitted"
                );
            }
        }
        self.vt.disconnect(conn);
        self.log(
            step,
            format!(
                "disconnect conn={conn} (in-flight answers still tracked: {})",
                self.vt.inflight()
            ),
        );
        Ok(())
    }

    // -- shared mechanics ---------------------------------------------

    /// Delivers the front line of `conn` and routes the outcome through
    /// the checker. Returns the transcript summary.
    fn deliver_one(&mut self, conn: usize) -> Result<String, String> {
        let now = self.clock.now_ns();
        match self.vt.deliver_next(conn, now) {
            Delivery::Held => Ok(format!("deliver conn={conn}: held")),
            Delivery::Empty => Ok(format!("deliver conn={conn}: empty")),
            Delivery::Disconnected => Ok(format!("deliver conn={conn}: disconnected")),
            Delivery::Ignored => {
                // a blank keepalive owes no response; its script slot is
                // consumed with it
                self.meta[conn]
                    .pop_front()
                    .ok_or("script metadata desynced from the transport outbox")?;
                Ok(format!("deliver conn={conn}: ignored"))
            }
            Delivery::Submitted => {
                let meta = self.meta[conn]
                    .pop_front()
                    .ok_or("script metadata desynced from the transport outbox")?;
                let LineMeta::Recommend { id, req } = meta else {
                    return Err("a non-recommend line was admitted to the shard queue".into());
                };
                self.delivered_recs += 1;
                let deadline_ns = req
                    .deadline_ms
                    .and_then(|ms| ms.checked_mul(1_000_000))
                    .and_then(|ns| now.checked_add(ns));
                self.pending.insert(id, PendingInfo { req, deadline_ns });
                Ok(format!("deliver conn={conn}: admitted id={id}"))
            }
            Delivery::Answered(resp) => {
                let meta = self.meta[conn]
                    .pop_front()
                    .ok_or("script metadata desynced from the transport outbox")?;
                self.handle_inline(conn, meta, resp)
            }
        }
    }

    /// Checks an inline (non-shard) answer against the script.
    fn handle_inline(
        &mut self,
        conn: usize,
        meta: LineMeta,
        resp: Response,
    ) -> Result<String, String> {
        match meta {
            LineMeta::Malformed => match &resp {
                Response::Error { id: 0, message }
                    if message.contains("malformed request line") =>
                {
                    Ok(format!("conn={conn} malformed line bounced ok"))
                }
                other => Err(format!("hostile line was not rejected cleanly: {other:?}")),
            },
            LineMeta::Stats { id } => match &resp {
                Response::Stats(s) if s.id == id => {
                    let summary = self.checker.check_stats(s, self.expected_frozen)?;
                    Ok(format!("conn={conn} {summary}"))
                }
                other => Err(format!("stats {id} answered {other:?}")),
            },
            LineMeta::Freeze { id, frozen } => match &resp {
                Response::Admin(ack) if ack.id == id => {
                    let summary = self.checker.check_freeze_ack(ack, frozen)?;
                    self.expected_frozen = frozen;
                    Ok(format!("conn={conn} {summary}"))
                }
                other => Err(format!("freeze {id} answered {other:?}")),
            },
            LineMeta::Swap { id, alt } => match &resp {
                Response::Admin(ack) if ack.id == id && ack.op == "swap" => {
                    if self.expected_frozen {
                        return Err(format!(
                            "swap acknowledged v{} while the registry was frozen",
                            ack.model_version
                        ));
                    }
                    let published = self.alt_ckpt(alt);
                    self.checker.note_publish(ack.model_version, published)?;
                    Ok(format!("conn={conn} swap ack v{}", ack.model_version))
                }
                Response::Error { id: eid, message } if *eid == id => {
                    if self.expected_frozen && message.contains("frozen") {
                        self.checker.note_frozen_rejection();
                        Ok(format!("conn={conn} swap rejected while frozen ok"))
                    } else {
                        Err(format!("swap {id} rejected unexpectedly: {message}"))
                    }
                }
                other => Err(format!("swap {id} answered {other:?}")),
            },
            LineMeta::Recommend { id, .. } => match &resp {
                // the only legal inline answer to a recommendation is
                // the shed refusal (admission control over high water)
                Response::Error { id: eid, message } if message.contains("shedding") => {
                    self.delivered_recs += 1;
                    self.checker.note_shed(id, *eid, message)?;
                    Ok(format!("conn={conn} shed id={id} ok"))
                }
                other => Err(format!(
                    "recommend {id} was answered inline instead of queued: {other:?}"
                )),
            },
        }
    }

    /// Polls every in-flight submission and checks completions against
    /// the oracle for the version live right now (completions are only
    /// polled immediately after the shard step that produced them, so
    /// the live version *is* the version that answered).
    fn poll_completions(&mut self) -> Result<Vec<String>, String> {
        let now = self.clock.now_ns();
        let version = self.service.model_version();
        let mut lines = Vec::new();
        for (conn, resp) in self.vt.poll() {
            let id = match &resp {
                Response::Recommendation(r) => r.id,
                Response::Error { id, .. } => *id,
                other => return Err(format!("a shard answered {other:?}")),
            };
            let info = self
                .pending
                .remove(&id)
                .ok_or_else(|| format!("completion for unknown or already-answered id {id}"))?;
            let summary =
                self.checker
                    .check_completion(&info.req, info.deadline_ns, &resp, version, now)?;
            lines.push(format!("  conn={conn} {summary}"));
        }
        Ok(lines)
    }

    /// End-of-run drain: release every held line, step shards until the
    /// queue and the in-flight set are empty, then settle the books.
    fn drain(&mut self, step: usize) -> Result<(), String> {
        self.log(step, "drain: begin".into());
        let target = self.vt.latest_hold_ns();
        let now = self.clock.now_ns();
        if target > now {
            self.clock.advance(target - now);
            self.log(
                step,
                format!("drain: clock released held lines (t={target}ns)"),
            );
        }
        for conn in 0..self.vt.conns() {
            while self.vt.connected(conn) && self.vt.held_on(conn) > 0 {
                let line = self.deliver_one(conn)?;
                self.log(step, format!("drain: {line}"));
            }
        }
        let mut spins = 0usize;
        while self.vt.inflight() > 0 || self.service.queued() > 0 {
            let shard = spins % self.sc.shards;
            self.service.step_shard(shard);
            for line in self.poll_completions()? {
                self.log(step, format!("drain: {line}"));
            }
            spins += 1;
            if spins > 10_000 {
                return Err("drain stalled: the queue never emptied".into());
            }
        }
        let mut outstanding: Vec<u64> = self.pending.keys().copied().collect();
        outstanding.sort_unstable();
        self.checker.check_zero_drops(&outstanding)?;
        self.checker.check_shed_accounting(self.delivered_recs)?;
        self.log(
            step,
            format!(
                "drain: shed books balance (delivered={} sheds={})",
                self.delivered_recs, self.checker.sheds
            ),
        );
        let records = self.service.trace_records();
        let summary = self.checker.check_trace(&records)?;
        self.log(step, format!("drain: {summary}"));
        let stats = self.service.stats();
        let summary = self.checker.check_stats(&stats, self.expected_frozen)?;
        self.log(step, format!("drain: complete; {summary}"));
        Ok(())
    }
}
