//! Failure-injection tests: the training stack must stay numerically
//! sane under hostile inputs — extreme logits, collapsed embeddings,
//! degenerate batches, oversized learning rates with clipping.

use ai2_nn::layers::{Activation, Linear, Mlp};
use ai2_nn::optim::{Adam, Optimizer, Sgd};
use ai2_nn::{Graph, ParamStore};
use ai2_tensor::Tensor;

#[test]
fn unification_loss_finite_at_extreme_logits() {
    let s = ParamStore::new(1);
    let mut g = Graph::new(&s);
    let x = g.constant(Tensor::from_rows(&[&[1e4, -1e4, 0.0, 30.0]]));
    let t = Tensor::from_rows(&[&[0.9, 0.0, 0.5, 0.0]]);
    let loss = g.unification_loss(x, t, 0.75, 1.0);
    assert!(g.scalar(loss).is_finite(), "loss {}", g.scalar(loss));
}

#[test]
fn unification_loss_gradient_finite_at_extreme_logits() {
    let mut s = ParamStore::new(2);
    let w = s.add("w", Tensor::from_rows(&[&[50.0, -50.0, 0.0]]));
    let mut g = Graph::new(&s);
    let wv = g.param(w);
    let t = Tensor::from_rows(&[&[1.0, 0.0, 0.3]]);
    let loss = g.unification_loss(wv, t, 0.75, 1.0);
    let grads = g.backward(loss);
    let gw = grads.get(w).expect("gradient exists");
    assert!(gw.all_finite(), "gradient exploded: {:?}", gw.as_slice());
    let _ = s; // silence unused-mut path on some toolchains
}

#[test]
fn info_nce_finite_when_embeddings_collapse() {
    // all embeddings identical: similarities saturate, loss must not NaN
    let s = ParamStore::new(3);
    let mut g = Graph::new(&s);
    let z = g.constant(Tensor::ones(&[8, 4]).normalize_rows(1e-8));
    let labels = [0u32, 0, 1, 1, 2, 2, 3, 3];
    let loss = g.info_nce_loss(z, &labels, 0.4);
    assert!(g.scalar(loss).is_finite());
}

#[test]
fn info_nce_single_sample_batch_is_zero() {
    let s = ParamStore::new(4);
    let mut g = Graph::new(&s);
    let z = g.constant(Tensor::ones(&[1, 4]));
    let loss = g.info_nce_loss(z, &[0], 0.4);
    assert_eq!(g.scalar(loss), 0.0);
}

#[test]
fn bce_with_logits_survives_huge_magnitudes() {
    let s = ParamStore::new(5);
    let mut g = Graph::new(&s);
    let x = g.constant(Tensor::from_slice(&[1e6, -1e6]));
    let loss = g.bce_with_logits_loss(x, Tensor::from_slice(&[0.0, 1.0]));
    let v = g.scalar(loss);
    assert!(
        v.is_finite() && v > 1e5,
        "stable form should give ~|logit|: {v}"
    );
}

#[test]
fn gradient_clipping_caps_divergent_sgd() {
    // absurd LR without clipping diverges; with clipping parameters stay
    // finite over many steps
    let mut s = ParamStore::new(6);
    let mlp = Mlp::new(&mut s, "m", &[4, 16, 1], Activation::Relu);
    let mut opt = Sgd::new(10.0);
    let x = Tensor::ones(&[8, 4]);
    let t = Tensor::full(&[8, 1], 100.0);
    for _ in 0..50 {
        let mut g = Graph::new(&s);
        let xv = g.constant(x.clone());
        let y = mlp.forward(&mut g, xv);
        let loss = g.mse_loss(y, t.clone());
        let mut grads = g.backward(loss);
        let n = grads.global_norm();
        if n > 1.0 {
            grads.scale_all(1.0 / n);
        }
        drop(g);
        opt.step(&mut s, &grads);
    }
    for (_, name, value) in s.iter() {
        assert!(value.all_finite(), "{name} diverged despite clipping");
    }
}

#[test]
fn adam_handles_sparse_gradients() {
    // only one of two params participates; Adam state for the other must
    // not be created or corrupted
    let mut s = ParamStore::new(7);
    let used = Linear::new(&mut s, "used", 2, 1, false);
    let unused = Linear::new(&mut s, "unused", 2, 1, false);
    let before_unused = s.get(s.find("unused.w").unwrap()).clone();
    let mut opt = Adam::new(0.1);
    for _ in 0..5 {
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::ones(&[3, 2]));
        let y = used.forward(&mut g, x);
        let loss = g.mse_loss(y, Tensor::zeros(&[3, 1]));
        let grads = g.backward(loss);
        drop(g);
        opt.step(&mut s, &grads);
    }
    assert_eq!(
        s.get(s.find("unused.w").unwrap()),
        &before_unused,
        "optimizer touched a parameter with no gradient"
    );
    let _ = unused;
}

#[test]
fn degenerate_single_row_batches_work() {
    let mut s = ParamStore::new(8);
    let mlp = Mlp::new(&mut s, "m", &[3, 8, 2], Activation::Gelu);
    let mut g = Graph::new(&s);
    let x = g.constant(Tensor::ones(&[1, 3]));
    let y = mlp.forward(&mut g, x);
    let loss = g.mse_loss(y, Tensor::zeros(&[1, 2]));
    let grads = g.backward(loss);
    assert!(!grads.is_empty());
    assert!(grads.global_norm().is_finite());
}

#[test]
fn layer_norm_survives_constant_rows() {
    // zero-variance rows: eps must keep the output finite
    let mut s = ParamStore::new(9);
    let ln = ai2_nn::layers::LayerNorm::new(&mut s, "ln", 4);
    let mut g = Graph::new(&s);
    let x = g.constant(Tensor::full(&[2, 4], 3.0));
    let y = ln.forward(&mut g, x);
    assert!(g.value(y).all_finite());
}

#[test]
fn softmax_rows_survive_uniform_large_inputs() {
    let s = ParamStore::new(10);
    let mut g = Graph::new(&s);
    let x = g.constant(Tensor::full(&[2, 5], 1e4));
    let p = g.softmax_rows(x);
    assert!(g.value(p).all_finite());
    let total: f32 = g.value(p).row(0).iter().sum();
    assert!((total - 1.0).abs() < 1e-5);
}
