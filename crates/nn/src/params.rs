//! Parameter storage shared by all modules of a model.

use ai2_tensor::{rng, Tensor};
use rand::rngs::StdRng;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index of the parameter inside its store (stable for the store's
    /// lifetime; used by optimizers to key their state).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns every trainable tensor of a model and the RNG used to initialise
/// them.
///
/// Modules (see [`crate::layers`]) register parameters at construction time
/// and hold the returned [`ParamId`]s. A [`crate::Graph`] reads parameter
/// values when the forward pass touches them; optimizers write updated
/// values back through [`ParamStore::get_mut`].
#[derive(Debug, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store whose initialisers draw from a deterministic
    /// RNG seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ParamStore {
            names: Vec::new(),
            values: Vec::new(),
            rng: rng::seeded(seed),
        }
    }

    /// Registers a parameter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — parameter names double as
    /// checkpoint keys and must be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "ParamStore: duplicate parameter name {name:?}"
        );
        self.names.push(name);
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Registers a `[fan_in, fan_out]` weight with Xavier-uniform init.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        fan_in: usize,
        fan_out: usize,
    ) -> ParamId {
        let w = rng::xavier_uniform(&mut self.rng, fan_in, fan_out);
        self.add(name, w)
    }

    /// Registers a `[fan_in, fan_out]` weight with He-normal init.
    pub fn add_he(&mut self, name: impl Into<String>, fan_in: usize, fan_out: usize) -> ParamId {
        let w = rng::he_normal(&mut self.rng, fan_in, fan_out);
        self.add(name, w)
    }

    /// Registers a zero-initialised parameter (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamId {
        self.add(name, Tensor::zeros(shape))
    }

    /// Registers a one-initialised parameter (typical for LayerNorm gains).
    pub fn add_ones(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamId {
        self.add(name, Tensor::ones(shape))
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value of a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters — the paper's "model size" metric
    /// (Figs. 8b and 9).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.values)
            .enumerate()
            .map(|(i, (n, v))| (ParamId(i), n.as_str(), v))
    }

    /// The store's RNG, for modules that need extra randomness (e.g. GAN
    /// noise) tied to the same seed.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new(0);
        let w = s.add_xavier("w", 4, 3);
        let b = s.add_zeros("b", &[3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 15);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.find("b"), Some(b));
        assert_eq!(s.find("missing"), None);
        assert_eq!(s.get(b).shape(), &[3]);
    }

    #[test]
    fn deterministic_init() {
        let mut a = ParamStore::new(7);
        let mut b = ParamStore::new(7);
        let wa = a.add_xavier("w", 8, 8);
        let wb = b.add_xavier("w", 8, 8);
        assert_eq!(a.get(wa), b.get(wb));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new(0);
        s.add_zeros("w", &[1]);
        s.add_zeros("w", &[1]);
    }

    #[test]
    fn iter_order_is_registration_order() {
        let mut s = ParamStore::new(0);
        s.add_zeros("a", &[1]);
        s.add_zeros("b", &[2]);
        let names: Vec<&str> = s.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
