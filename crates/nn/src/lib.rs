//! Tape-based automatic differentiation, transformer building blocks,
//! losses and optimizers — the PyTorch substitute for the AIrchitect v2
//! reproduction.
//!
//! # Architecture
//!
//! * [`ParamStore`] owns all trainable tensors of a model; modules hold
//!   [`ParamId`] handles into it.
//! * [`Graph`] is a per-step tape. A forward pass records nodes; calling
//!   [`Graph::backward`] walks the tape in reverse and returns a
//!   [`Gradients`] map from parameter to gradient tensor.
//! * [`Arena`] is a recycled buffer pool for inference:
//!   [`Graph::with_arena`] builds a gradient-free tape whose activations
//!   live in pooled storage, and [`Graph::into_arena`] hands the storage
//!   back so steady-state serving performs no per-batch heap allocation.
//! * [`layers`] provides [`layers::Linear`], [`layers::LayerNorm`],
//!   [`layers::MultiHeadSelfAttention`], [`layers::FeedForward`] and
//!   [`layers::TransformerBlock`] (pre-norm residual blocks as used by the
//!   paper's encoder and decoder).
//! * [`optim`] provides SGD and Adam with learning-rate schedules.
//! * Losses include the paper's three specials: the supervised infoNCE
//!   contrastive loss (Eq. 1), the L1 performance-prediction loss, and the
//!   focal-style unification loss for UOV heads (Eq. 3).
//!
//! # Example: one training step
//!
//! ```
//! use ai2_nn::{Graph, ParamStore, layers::Linear, optim::{Adam, Optimizer}};
//! use ai2_tensor::Tensor;
//!
//! let mut store = ParamStore::new(42);
//! let lin = Linear::new(&mut store, "lin", 2, 1, true);
//! let mut opt = Adam::new(1e-2);
//!
//! let x = Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let t = Tensor::from_rows(&[&[1.0], &[0.0]]);
//!
//! let mut g = Graph::new(&store);
//! let xv = g.constant(x);
//! let y = lin.forward(&mut g, xv);
//! let loss = g.mse_loss(y, t);
//! let grads = g.backward(loss);
//! opt.step(&mut store, &grads);
//! ```

mod graph;
mod params;

pub mod checkpoint;
pub mod gradcheck;
pub mod layers;
pub mod optim;
pub mod quant;

pub use graph::{Arena, Gradients, Graph, VarId};
pub use params::{ParamId, ParamStore};
