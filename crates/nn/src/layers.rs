//! Neural-network modules: linear, layer-norm, multi-head self-attention,
//! feed-forward, and the pre-norm transformer block used by both the
//! AIrchitect v2 encoder and decoder.
//!
//! Modules are plain structs holding [`ParamId`]s; `forward` records ops
//! onto a [`Graph`]. Constructing a module registers its parameters in the
//! given [`ParamStore`] under `"{prefix}.{field}"` names, which become the
//! checkpoint keys.

use crate::graph::{Graph, VarId};
use crate::params::{ParamId, ParamStore};
use crate::quant::{
    QuantError, QuantSource, QuantizedAttention, QuantizedBlock, QuantizedFeedForward,
    QuantizedLinear,
};

/// Fully connected layer `y = x W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `[in_dim, out_dim]` Xavier-initialised weight (and a
    /// zero bias when `bias` is true) under `prefix`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add_xavier(format!("{prefix}.w"), in_dim, out_dim);
        let b = bias.then(|| store.add_zeros(format!("{prefix}.b"), &[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to `[batch, in_dim]` input.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let w = g.param(self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = g.param(b);
                g.add_row(y, bv)
            }
            None => y,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter handle (checkpoint / quantization bookkeeping).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }

    /// Builds the int8 view of this layer's weight through `src`,
    /// validating the produced dimensions.
    ///
    /// # Errors
    ///
    /// Propagates the source's error, or reports a shape mismatch.
    pub fn quantized(
        &self,
        store: &ParamStore,
        src: &mut QuantSource<'_>,
    ) -> Result<QuantizedLinear, QuantError> {
        let name = store.name(self.w);
        let q = src(name, store.get(self.w))?;
        if (q.in_dim(), q.out_dim()) != (self.in_dim, self.out_dim) {
            return Err(QuantError::ShapeMismatch {
                name: name.to_string(),
                expected: (self.in_dim, self.out_dim),
                found: (q.in_dim(), q.out_dim()),
            });
        }
        Ok(q)
    }

    /// Applies the layer with an int8 weight (`q`) in place of the `f32`
    /// matmul; the bias, when present, stays `f32`.
    pub fn forward_quant(&self, g: &mut Graph<'_>, x: VarId, q: &QuantizedLinear) -> VarId {
        let y = g.quant_linear(x, q);
        match self.b {
            Some(b) => {
                let bv = g.param(b);
                g.add_row(y, bv)
            }
            None => y,
        }
    }
}

/// Layer normalisation with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers unit gain / zero bias of width `dim` under `prefix`.
    pub fn new(store: &mut ParamStore, prefix: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add_ones(format!("{prefix}.gamma"), &[dim]),
            beta: store.add_zeros(format!("{prefix}.beta"), &[dim]),
            eps: 1e-5,
        }
    }

    /// Normalises each row of `[batch, dim]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let gamma = g.param(self.gamma);
        let beta = g.param(self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Activation functions selectable by the MLP-style modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// GELU (tanh approximation) — the transformer default here.
    #[default]
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with slope 0.2 (GAN discriminators).
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Records the activation on the graph.
    pub fn apply(self, g: &mut Graph<'_>, x: VarId) -> VarId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Gelu => g.gelu(x),
            Activation::Tanh => g.tanh(x),
            Activation::LeakyRelu => g.leaky_relu(x, 0.2),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Two-layer position-wise feed-forward network.
#[derive(Debug, Clone)]
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
    act: Activation,
}

impl FeedForward {
    /// `d_model → d_hidden → d_model` with the given activation.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        d_hidden: usize,
        act: Activation,
    ) -> Self {
        FeedForward {
            lin1: Linear::new(store, &format!("{prefix}.ff1"), d_model, d_hidden, true),
            lin2: Linear::new(store, &format!("{prefix}.ff2"), d_hidden, d_model, true),
            act,
        }
    }

    /// Applies both layers.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let h = self.lin1.forward(g, x);
        let h = self.act.apply(g, h);
        self.lin2.forward(g, h)
    }

    /// Int8 views of both layers' weights.
    ///
    /// # Errors
    ///
    /// Propagates the source's error.
    pub fn quantized(
        &self,
        store: &ParamStore,
        src: &mut QuantSource<'_>,
    ) -> Result<QuantizedFeedForward, QuantError> {
        Ok(QuantizedFeedForward {
            l1: self.lin1.quantized(store, src)?,
            l2: self.lin2.quantized(store, src)?,
        })
    }

    /// Applies both layers with int8 weights.
    pub fn forward_quant(&self, g: &mut Graph<'_>, x: VarId, q: &QuantizedFeedForward) -> VarId {
        let h = self.lin1.forward_quant(g, x, &q.l1);
        let h = self.act.apply(g, h);
        self.lin2.forward_quant(g, h, &q.l2)
    }
}

/// Multi-head self-attention with learned Q/K/V/output projections.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
}

impl MultiHeadSelfAttention {
    /// `d_model` must be divisible by `heads`.
    ///
    /// # Panics
    ///
    /// Panics if `d_model % heads != 0`.
    pub fn new(store: &mut ParamStore, prefix: &str, d_model: usize, heads: usize) -> Self {
        assert_eq!(
            d_model % heads,
            0,
            "MultiHeadSelfAttention: d_model {d_model} not divisible by heads {heads}"
        );
        MultiHeadSelfAttention {
            wq: Linear::new(store, &format!("{prefix}.wq"), d_model, d_model, false),
            wk: Linear::new(store, &format!("{prefix}.wk"), d_model, d_model, false),
            wv: Linear::new(store, &format!("{prefix}.wv"), d_model, d_model, false),
            wo: Linear::new(store, &format!("{prefix}.wo"), d_model, d_model, true),
            heads,
        }
    }

    /// Attends over `tokens` positions within each of `batch` samples;
    /// `x` is `[batch·tokens, d_model]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId, batch: usize, tokens: usize) -> VarId {
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let a = g.attention(q, k, v, batch, self.heads, tokens);
        self.wo.forward(g, a)
    }

    /// Int8 views of the four projection weights.
    ///
    /// # Errors
    ///
    /// Propagates the source's error.
    pub fn quantized(
        &self,
        store: &ParamStore,
        src: &mut QuantSource<'_>,
    ) -> Result<QuantizedAttention, QuantError> {
        Ok(QuantizedAttention {
            wq: self.wq.quantized(store, src)?,
            wk: self.wk.quantized(store, src)?,
            wv: self.wv.quantized(store, src)?,
            wo: self.wo.quantized(store, src)?,
        })
    }

    /// Attention with int8 projection weights (the softmax·V core stays
    /// `f32`).
    pub fn forward_quant(
        &self,
        g: &mut Graph<'_>,
        x: VarId,
        batch: usize,
        tokens: usize,
        qw: &QuantizedAttention,
    ) -> VarId {
        let q = self.wq.forward_quant(g, x, &qw.wq);
        let k = self.wk.forward_quant(g, x, &qw.wk);
        let v = self.wv.forward_quant(g, x, &qw.wv);
        let a = g.attention(q, k, v, batch, self.heads, tokens);
        self.wo.forward_quant(g, a, &qw.wo)
    }
}

/// Pre-norm transformer block: `x + Attn(LN(x))` then `x + FFN(LN(x))`.
///
/// This is the `L ×` stacked unit of the paper's encoder and decoder
/// (Fig. 2: self-attention → add & norm → linear).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

impl TransformerBlock {
    /// Builds a block of width `d_model` with `heads` attention heads and
    /// an FFN hidden width of `4·d_model`.
    pub fn new(store: &mut ParamStore, prefix: &str, d_model: usize, heads: usize) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(store, &format!("{prefix}.ln1"), d_model),
            attn: MultiHeadSelfAttention::new(store, &format!("{prefix}.attn"), d_model, heads),
            ln2: LayerNorm::new(store, &format!("{prefix}.ln2"), d_model),
            ffn: FeedForward::new(
                store,
                &format!("{prefix}.ffn"),
                d_model,
                4 * d_model,
                Activation::Gelu,
            ),
        }
    }

    /// Applies the block to `[batch·tokens, d_model]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId, batch: usize, tokens: usize) -> VarId {
        let h = self.ln1.forward(g, x);
        let h = self.attn.forward(g, h, batch, tokens);
        let x = g.add(x, h);
        let h = self.ln2.forward(g, x);
        let h = self.ffn.forward(g, h);
        g.add(x, h)
    }

    /// Int8 views of every matmul weight in the block (layer-norm
    /// parameters stay `f32`).
    ///
    /// # Errors
    ///
    /// Propagates the source's error.
    pub fn quantized(
        &self,
        store: &ParamStore,
        src: &mut QuantSource<'_>,
    ) -> Result<QuantizedBlock, QuantError> {
        Ok(QuantizedBlock {
            attn: self.attn.quantized(store, src)?,
            ffn: self.ffn.quantized(store, src)?,
        })
    }

    /// Applies the block with int8 matmul weights.
    pub fn forward_quant(
        &self,
        g: &mut Graph<'_>,
        x: VarId,
        batch: usize,
        tokens: usize,
        q: &QuantizedBlock,
    ) -> VarId {
        let h = self.ln1.forward(g, x);
        let h = self.attn.forward_quant(g, h, batch, tokens, &q.attn);
        let x = g.add(x, h);
        let h = self.ln2.forward(g, x);
        let h = self.ffn.forward_quant(g, h, &q.ffn);
        g.add(x, h)
    }
}

/// A plain multi-layer perceptron (the AIrchitect v1 baseline backbone).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[4, 128, 128, 76]`.
    /// The activation is applied between layers but not after the last.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(store: &mut ParamStore, prefix: &str, widths: &[usize], act: Activation) -> Self {
        assert!(
            widths.len() >= 2,
            "Mlp: need at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{prefix}.l{i}"), w[0], w[1], true))
            .collect();
        Mlp { layers, act }
    }

    /// Applies all layers.
    pub fn forward(&self, g: &mut Graph<'_>, x: VarId) -> VarId {
        let mut h = x;
        for (i, l) in self.layers.iter().enumerate() {
            h = l.forward(g, h);
            if i + 1 < self.layers.len() {
                h = self.act.apply(g, h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_tensor::Tensor;

    #[test]
    fn linear_shapes() {
        let mut s = ParamStore::new(1);
        let lin = Linear::new(&mut s, "l", 3, 5, true);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 5);
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::zeros(&[2, 3]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn layernorm_output_is_standardised() {
        let mut s = ParamStore::new(1);
        let ln = LayerNorm::new(&mut s, "ln", 4);
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut g, x);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn transformer_block_preserves_shape() {
        let mut s = ParamStore::new(2);
        let blk = TransformerBlock::new(&mut s, "blk", 8, 2);
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::ones(&[2 * 3, 8])); // batch 2, tokens 3
        let y = blk.forward(&mut g, x, 2, 3);
        assert_eq!(g.value(y).shape(), &[6, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn mlp_depth_and_shapes() {
        let mut s = ParamStore::new(3);
        let mlp = Mlp::new(&mut s, "mlp", &[4, 16, 16, 2], Activation::Relu);
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::zeros(&[5, 4]));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[5, 2]);
        // 3 linear layers → 6 parameters
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn attention_module_trains_toward_target() {
        use crate::optim::{Adam, Optimizer};
        let mut s = ParamStore::new(4);
        let attn = MultiHeadSelfAttention::new(&mut s, "a", 8, 2);
        let mut opt = Adam::new(5e-3);
        let x = Tensor::ones(&[4, 8]); // 1 sample, 4 tokens
        let target = Tensor::full(&[4, 8], 0.25);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut g = Graph::new(&s);
            let xv = g.constant(x.clone());
            let y = attn.forward(&mut g, xv, 1, 4);
            let loss = g.mse_loss(y, target.clone());
            last = g.scalar(loss);
            first.get_or_insert(last);
            let grads = g.backward(loss);
            opt.step(&mut s, &grads);
        }
        assert!(
            last < first.unwrap() * 0.1,
            "loss did not decrease: {} → {last}",
            first.unwrap()
        );
    }
}
