//! The autograd tape: a flat arena of nodes recorded during the forward
//! pass and differentiated in reverse.
//!
//! Activations flow as 2-D tensors. Sequence data (the paper's 4-token
//! workload embedding) is kept flattened as `[batch·tokens, d_model]`;
//! the token-aware ops ([`Graph::attention`], [`Graph::mean_pool_tokens`],
//! [`Graph::repeat_tokens`]) take the geometry as explicit arguments.

use std::collections::HashMap;

use ai2_tensor::kernel;
use ai2_tensor::Tensor;

use crate::params::{ParamId, ParamStore};

/// Handle to a node (value) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    AddRow(VarId, VarId),
    Scale(VarId, f32),
    AddScalar(VarId),
    Matmul(VarId, VarId),
    Relu(VarId),
    LeakyRelu(VarId, f32),
    Gelu(VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    Exp(VarId),
    SoftmaxRows(VarId),
    LayerNorm {
        x: VarId,
        gamma: VarId,
        beta: VarId,
    },
    NormalizeRows(VarId),
    MeanPoolTokens {
        x: VarId,
        tokens: usize,
    },
    RepeatTokens {
        x: VarId,
        tokens: usize,
    },
    Attention {
        q: VarId,
        k: VarId,
        v: VarId,
        batch: usize,
        heads: usize,
        tokens: usize,
    },
    Reshape(VarId),
    MeanAll(VarId),
    CrossEntropyLoss {
        x: VarId,
        targets: Vec<usize>,
    },
    MseLoss(VarId),
    L1Loss(VarId),
    BceWithLogitsLoss(VarId),
    InfoNceLoss {
        z: VarId,
        tau: f32,
    },
    UnificationLoss {
        x: VarId,
        alpha: f32,
        gamma: f32,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    /// Auxiliary tensors captured at forward time for the backward pass
    /// (softmax outputs, attention probabilities, loss targets, …).
    saved: Vec<Tensor>,
    needs_grad: bool,
    param: Option<ParamId>,
}

/// Gradients of one backward pass, keyed by [`ParamId`].
#[derive(Debug, Default)]
pub struct Gradients {
    by_param: HashMap<ParamId, Tensor>,
}

impl Gradients {
    /// Gradient for `id`, if the parameter participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// Whether no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Iterates over `(param, gradient)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param.iter().map(|(k, v)| (*k, v))
    }

    /// Global L2 norm over all gradients (for clipping / diagnostics).
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .values()
            .map(|g| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient in place (gradient clipping).
    pub fn scale_all(&mut self, factor: f32) {
        for g in self.by_param.values_mut() {
            g.map_inplace(|v| v * factor);
        }
    }
}

/// A reusable pool of activation buffers and tape storage for repeated
/// inference-mode forward passes.
///
/// Steady-state serving runs the same graph shape every batch; an `Arena`
/// keeps every tensor (and the tape's node vector and parameter cache)
/// alive between passes so a warm forward performs **zero heap
/// allocations**. Build a graph over it with [`Graph::with_arena`], and
/// hand the storage back with [`Graph::into_arena`] when the pass's
/// outputs have been copied out.
#[derive(Default)]
pub struct Arena {
    free: Vec<Tensor>,
    nodes: Vec<Node>,
    param_cache: HashMap<ParamId, VarId>,
    qbuf: Vec<i8>,
}

impl Arena {
    /// An empty arena; buffers are grown on the first (warm-up) pass.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Number of pooled buffers currently available.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A single forward/backward tape over a [`ParamStore`].
///
/// Create one `Graph` per training step; recording is cheap relative to
/// the tensor math. See the crate-level example. For allocation-free
/// repeated inference, see [`Graph::with_arena`].
pub struct Graph<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
    param_cache: HashMap<ParamId, VarId>,
    free: Vec<Tensor>,
    /// Reusable scratch for int8-quantized activation rows
    /// ([`Graph::quant_linear`]); capacity survives arena recycling.
    qbuf: Vec<i8>,
    /// Whether backward-pass bookkeeping (`saved` tensors, `needs_grad`
    /// propagation) is recorded. Off in arena/inference mode.
    record_grads: bool,
}

impl<'s> Graph<'s> {
    /// Starts an empty tape over `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Graph {
            store,
            nodes: Vec::with_capacity(64),
            param_cache: HashMap::new(),
            free: Vec::new(),
            qbuf: Vec::new(),
            record_grads: true,
        }
    }

    /// Starts an inference-only tape whose activation buffers are drawn
    /// from (and returned to) `arena`.
    ///
    /// Gradients are not recorded: [`Graph::backward`] on such a graph
    /// returns no gradients. After reading the outputs, call
    /// [`Graph::into_arena`] to recycle every buffer for the next pass.
    pub fn with_arena(store: &'s ParamStore, arena: Arena) -> Self {
        Graph {
            store,
            nodes: arena.nodes,
            param_cache: arena.param_cache,
            free: arena.free,
            qbuf: arena.qbuf,
            record_grads: false,
        }
    }

    /// Tears down the tape, returning every buffer to the arena pool.
    pub fn into_arena(mut self) -> Arena {
        for node in self.nodes.drain(..) {
            self.free.push(node.value);
            for t in node.saved {
                self.free.push(t);
            }
        }
        self.param_cache.clear();
        Arena {
            free: self.free,
            nodes: self.nodes,
            param_cache: self.param_cache,
            qbuf: self.qbuf,
        }
    }

    /// A zeroed tensor of `shape`, recycled from the pool when possible.
    fn buf(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        // Best fit (smallest sufficient capacity, first on ties), removed
        // without disturbing pool order. The first pass allocates every
        // buffer at exactly its request size, so from the second pass of
        // a fixed op sequence onward best-fit hands each request its
        // exact buffer back — the steady state allocates nothing and the
        // pool is bit-stable across passes.
        let fit = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, t)| t.data_capacity() >= len)
            .min_by_key(|(_, t)| t.data_capacity())
            .map(|(pos, _)| pos);
        if let Some(pos) = fit {
            let mut t = self.free.remove(pos);
            t.reset_zeros(shape);
            return t;
        }
        if let Some(mut t) = self.free.pop() {
            // Warm-up: grow an undersized buffer rather than abandoning it.
            t.reset_zeros(shape);
            return t;
        }
        Tensor::zeros(shape)
    }

    /// Returns a scratch tensor to the pool (arena mode) or drops it.
    fn recycle(&mut self, t: Tensor) {
        if !self.record_grads {
            self.free.push(t);
        }
    }

    /// Shape of a node's value as a stack array (rank ≤ 4), so callers can
    /// request buffers without borrowing the node across the call.
    fn shape_of(&self, v: VarId) -> ([usize; 4], usize) {
        let shape = self.nodes[v.0].value.shape();
        assert!(shape.len() <= 4, "shape_of: rank {} > 4", shape.len());
        let mut dims = [0usize; 4];
        dims[..shape.len()].copy_from_slice(shape);
        (dims, shape.len())
    }

    /// A zeroed buffer shaped like node `v`.
    fn buf_like(&mut self, v: VarId) -> Tensor {
        let (dims, rank) = self.shape_of(v);
        self.buf(&dims[..rank])
    }

    fn push(&mut self, value: Tensor, op: Op, saved: Vec<Tensor>, needs_grad: bool) -> VarId {
        self.nodes.push(Node {
            value,
            op,
            saved,
            needs_grad: needs_grad && self.record_grads,
            param: None,
        });
        VarId(self.nodes.len() - 1)
    }

    fn ng(&self, v: VarId) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Inserts a non-trainable input (no gradient is tracked).
    ///
    /// The tensor is adopted as-is; in arena mode prefer [`Graph::input`],
    /// which copies into a pooled buffer instead of donating a fresh
    /// allocation to the pool.
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Leaf, vec![], false)
    }

    /// Inserts a non-trainable input by copying it into a pooled buffer.
    pub fn input(&mut self, value: &Tensor) -> VarId {
        let mut out = self.buf(value.shape());
        out.as_mut_slice().copy_from_slice(value.as_slice());
        self.push(out, Op::Leaf, vec![], false)
    }

    /// Inserts rows `start..end` of a rank-2 tensor by copying them into
    /// a pooled buffer — the chunked-inference entry point that avoids
    /// materialising the row slice as a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not rank 2 or the range is out of bounds.
    pub fn input_rows(&mut self, value: &Tensor, start: usize, end: usize) -> VarId {
        assert!(start <= end && end <= value.rows(), "input_rows: bad range");
        let cols = value.cols();
        let mut out = self.buf(&[end - start, cols]);
        out.as_mut_slice()
            .copy_from_slice(&value.as_slice()[start * cols..end * cols]);
        self.push(out, Op::Leaf, vec![], false)
    }

    /// Int8 matmul against a quantized weight:
    /// `out[r, j] = Σ_k x[r, k]·w[k, j]` with `i32` accumulation.
    ///
    /// Inference-only — the int8 path has no backward rule.
    ///
    /// # Panics
    ///
    /// Panics on a gradient-recording graph or if `x`'s width differs
    /// from `q.in_dim()`.
    pub fn quant_linear(&mut self, x: VarId, q: &crate::quant::QuantizedLinear) -> VarId {
        assert!(
            !self.record_grads,
            "quant_linear: int8 layers are inference-only; use Graph::with_arena"
        );
        let rows = self.nodes[x.0].value.rows();
        assert_eq!(
            self.nodes[x.0].value.cols(),
            q.in_dim(),
            "quant_linear: input width mismatch"
        );
        let mut out = self.buf(&[rows, q.out_dim()]);
        let mut qbuf = std::mem::take(&mut self.qbuf);
        q.forward_into(
            self.nodes[x.0].value.as_slice(),
            rows,
            out.as_mut_slice(),
            &mut qbuf,
        );
        self.qbuf = qbuf;
        self.push(out, Op::Leaf, vec![], false)
    }

    /// Inserts (or reuses) the leaf node for a trainable parameter.
    pub fn param(&mut self, id: ParamId) -> VarId {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let value = if self.record_grads {
            self.store.get(id).clone()
        } else {
            // Inference: copy into a pooled buffer so repeated passes
            // don't allocate.
            let src = self.store.get(id);
            let mut out = self.buf(src.shape());
            out.as_mut_slice().copy_from_slice(src.as_slice());
            out
        };
        let v = self.push(value, Op::Leaf, vec![], true);
        self.nodes[v.0].param = Some(id);
        self.param_cache.insert(id, v);
        v
    }

    /// Value computed for `v` during the forward pass.
    pub fn value(&self, v: VarId) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Scalar value of a rank-1, length-1 node (losses).
    ///
    /// # Panics
    ///
    /// Panics if the node holds more than one element.
    pub fn scalar(&self, v: VarId) -> f32 {
        let t = self.value(v);
        assert_eq!(t.len(), 1, "scalar: node has {} elements", t.len());
        t.at(0)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- elementwise & linear ops -------------------------------------

    /// Elementwise binary op into a pooled buffer.
    fn ew_binary(&mut self, a: VarId, b: VarId, op: Op, f: impl Fn(f32, f32) -> f32) -> VarId {
        assert_eq!(
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape(),
            "elementwise op: shape mismatch"
        );
        let mut out = self.buf_like(a);
        {
            let av = self.nodes[a.0].value.as_slice();
            let bv = self.nodes[b.0].value.as_slice();
            for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(av).zip(bv) {
                *o = f(x, y);
            }
        }
        let ng = self.ng(a) || self.ng(b);
        self.push(out, op, vec![], ng)
    }

    /// Elementwise unary op into a pooled buffer.
    fn ew_unary(&mut self, a: VarId, op: Op, f: impl Fn(f32) -> f32) -> VarId {
        let mut out = self.buf_like(a);
        {
            let av = self.nodes[a.0].value.as_slice();
            for (o, &x) in out.as_mut_slice().iter_mut().zip(av) {
                *o = f(x);
            }
        }
        let ng = self.ng(a);
        self.push(out, op, vec![], ng)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.ew_binary(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        self.ew_binary(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.ew_binary(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// Adds a row vector `b` (`[C]`) to every row of `a` (`[R, C]`).
    pub fn add_row(&mut self, a: VarId, b: VarId) -> VarId {
        let c = self.nodes[a.0].value.cols();
        assert_eq!(
            self.nodes[b.0].value.len(),
            c,
            "add_row: row length {} != cols {c}",
            self.nodes[b.0].value.len()
        );
        let mut out = self.buf_like(a);
        {
            let av = self.nodes[a.0].value.as_slice();
            let rv = self.nodes[b.0].value.as_slice();
            for (orow, arow) in out.as_mut_slice().chunks_mut(c).zip(av.chunks(c)) {
                for ((o, &x), &y) in orow.iter_mut().zip(arow).zip(rv) {
                    *o = x + y;
                }
            }
        }
        let ng = self.ng(a) || self.ng(b);
        self.push(out, Op::AddRow(a, b), vec![], ng)
    }

    /// Multiplies every element by a compile-time constant.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        self.ew_unary(a, Op::Scale(a, c), |x| x * c)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: VarId, c: f32) -> VarId {
        self.ew_unary(a, Op::AddScalar(a), |x| x + c)
    }

    /// Matrix product `a × b`, through the runtime-dispatched SIMD GEMM.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let (m, k) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let (k2, n) = (self.nodes[b.0].value.rows(), self.nodes[b.0].value.cols());
        assert_eq!(
            k,
            k2,
            "matmul: inner dimensions differ: {:?} × {:?}",
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape()
        );
        let mut out = self.buf(&[m, n]);
        kernel::gemm(
            kernel::active(),
            self.nodes[a.0].value.as_slice(),
            self.nodes[b.0].value.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        let ng = self.ng(a) || self.ng(b);
        self.push(out, Op::Matmul(a, b), vec![], ng)
    }

    // ---- activations ----------------------------------------------------

    /// Rectified linear unit (vectorized; bit-exact across kernel levels).
    pub fn relu(&mut self, a: VarId) -> VarId {
        let mut out = self.buf_like(a);
        kernel::relu_to(
            kernel::active(),
            self.nodes[a.0].value.as_slice(),
            out.as_mut_slice(),
        );
        let ng = self.ng(a);
        self.push(out, Op::Relu(a), vec![], ng)
    }

    /// Leaky ReLU with negative slope `slope` (used by the GANDSE baseline).
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        let mut out = self.buf_like(a);
        kernel::leaky_relu_to(
            kernel::active(),
            self.nodes[a.0].value.as_slice(),
            slope,
            out.as_mut_slice(),
        );
        let ng = self.ng(a);
        self.push(out, Op::LeakyRelu(a, slope), vec![], ng)
    }

    /// Gaussian error linear unit (tanh approximation, vectorized).
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let mut out = self.buf_like(a);
        kernel::gelu_to(
            kernel::active(),
            self.nodes[a.0].value.as_slice(),
            out.as_mut_slice(),
        );
        let ng = self.ng(a);
        self.push(out, Op::Gelu(a), vec![], ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.ew_unary(a, Op::Tanh(a), f32::tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.ew_unary(a, Op::Sigmoid(a), sigmoid_fwd)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        self.ew_unary(a, Op::Exp(a), f32::exp)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: VarId) -> VarId {
        let mut out = self.buf_like(a);
        {
            let xv = self.nodes[a.0].value.as_slice();
            let c = self.nodes[a.0].value.cols();
            for (orow, xrow) in out.as_mut_slice().chunks_mut(c).zip(xv.chunks(c)) {
                let m = xrow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0;
                for (o, &x) in orow.iter_mut().zip(xrow) {
                    *o = (x - m).exp();
                    z += *o;
                }
                for o in orow.iter_mut() {
                    *o /= z;
                }
            }
        }
        let ng = self.ng(a);
        let saved = if self.record_grads {
            vec![out.clone()]
        } else {
            Vec::new()
        };
        self.push(out, Op::SoftmaxRows(a), saved, ng)
    }

    // ---- normalisation ---------------------------------------------------

    /// Layer normalisation over each row, with gain `gamma` and bias
    /// `beta` (both `[C]`). Row reductions (mean, variance) run through
    /// the vectorized kernels.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> VarId {
        let (r, c) = {
            let xv = &self.nodes[x.0].value;
            (xv.rows(), xv.cols())
        };
        let kn = kernel::active();
        let ng = self.ng(x) || self.ng(gamma) || self.ng(beta);
        let mut out = self.buf(&[r, c]);
        if self.record_grads {
            // Training path: also materialise x̂ and 1/σ for backward.
            let mut xhat = Tensor::zeros(&[r, c]);
            let mut inv_std = Tensor::zeros(&[r]);
            {
                let xv = &self.nodes[x.0].value;
                let gm = &self.nodes[gamma.0].value;
                let bt = &self.nodes[beta.0].value;
                for i in 0..r {
                    let row = xv.row(i);
                    let mu = kernel::sum(kn, row) / c as f32;
                    let var = kernel::sq_dev_sum(kn, row, mu) / c as f32;
                    let is = 1.0 / (var + eps).sqrt();
                    inv_std.as_mut_slice()[i] = is;
                    for j in 0..c {
                        let xh = (row[j] - mu) * is;
                        xhat[(i, j)] = xh;
                        out[(i, j)] = gm.at(j) * xh + bt.at(j);
                    }
                }
            }
            self.push(
                out,
                Op::LayerNorm { x, gamma, beta },
                vec![xhat, inv_std],
                ng,
            )
        } else {
            {
                let xv = &self.nodes[x.0].value;
                let gm = self.nodes[gamma.0].value.as_slice();
                let bt = self.nodes[beta.0].value.as_slice();
                for (i, orow) in out.as_mut_slice().chunks_mut(c).enumerate() {
                    let row = xv.row(i);
                    let mu = kernel::sum(kn, row) / c as f32;
                    let var = kernel::sq_dev_sum(kn, row, mu) / c as f32;
                    let is = 1.0 / (var + eps).sqrt();
                    kernel::layernorm_row(kn, row, gm, bt, mu, is, orow);
                }
            }
            self.push(out, Op::LayerNorm { x, gamma, beta }, Vec::new(), ng)
        }
    }

    /// Normalises each row to unit L2 norm (contrastive embeddings).
    pub fn normalize_rows(&mut self, a: VarId) -> VarId {
        let r = self.nodes[a.0].value.rows();
        let mut norms = self.buf(&[r]);
        let mut out = self.buf_like(a);
        {
            let xv = &self.nodes[a.0].value;
            let c = xv.cols();
            for (i, (orow, nslot)) in out
                .as_mut_slice()
                .chunks_mut(c)
                .zip(norms.as_mut_slice())
                .enumerate()
            {
                let row = xv.row(i);
                let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
                *nslot = n;
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o = v / n;
                }
            }
        }
        let ng = self.ng(a);
        let saved = if self.record_grads {
            vec![out.clone(), norms]
        } else {
            self.recycle(norms);
            Vec::new()
        };
        self.push(out, Op::NormalizeRows(a), saved, ng)
    }

    // ---- token geometry ----------------------------------------------------

    /// Mean-pools `[batch·tokens, d]` to `[batch, d]`.
    ///
    /// # Panics
    ///
    /// Panics if the row count is not a multiple of `tokens`.
    pub fn mean_pool_tokens(&mut self, x: VarId, tokens: usize) -> VarId {
        let (rt, d) = {
            let xv = &self.nodes[x.0].value;
            (xv.rows(), xv.cols())
        };
        assert_eq!(
            rt % tokens,
            0,
            "mean_pool_tokens: {rt} rows not divisible by {tokens}"
        );
        let b = rt / tokens;
        let mut out = self.buf(&[b, d]);
        {
            let xv = &self.nodes[x.0].value;
            for (bi, orow) in out.as_mut_slice().chunks_mut(d).enumerate() {
                for t in 0..tokens {
                    let row = xv.row(bi * tokens + t);
                    for (o, &v) in orow.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                for o in orow.iter_mut() {
                    *o /= tokens as f32;
                }
            }
        }
        let ng = self.ng(x);
        self.push(out, Op::MeanPoolTokens { x, tokens }, vec![], ng)
    }

    /// Repeats each row of `[batch, d]` `tokens` times → `[batch·tokens, d]`
    /// (the decoder's upsampling stage).
    pub fn repeat_tokens(&mut self, x: VarId, tokens: usize) -> VarId {
        let (b, d) = {
            let xv = &self.nodes[x.0].value;
            (xv.rows(), xv.cols())
        };
        let mut out = self.buf(&[b * tokens, d]);
        {
            let xv = &self.nodes[x.0].value;
            for (r, orow) in out.as_mut_slice().chunks_mut(d).enumerate() {
                orow.copy_from_slice(xv.row(r / tokens));
            }
        }
        let ng = self.ng(x);
        self.push(out, Op::RepeatTokens { x, tokens }, vec![], ng)
    }

    /// Scaled dot-product multi-head self-attention.
    ///
    /// `q`, `k`, `v` are `[batch·tokens, d_model]` with
    /// `d_model = heads · head_dim`. Attention is computed independently
    /// per sample and head over the `tokens` positions.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent with `batch`, `heads`,
    /// `tokens`.
    pub fn attention(
        &mut self,
        q: VarId,
        k: VarId,
        v: VarId,
        batch: usize,
        heads: usize,
        tokens: usize,
    ) -> VarId {
        let d = {
            let qv = &self.nodes[q.0].value;
            let kv = &self.nodes[k.0].value;
            let vv = &self.nodes[v.0].value;
            let d = qv.cols();
            assert_eq!(qv.rows(), batch * tokens, "attention: q rows");
            assert_eq!(kv.shape(), qv.shape(), "attention: k shape");
            assert_eq!(vv.shape(), qv.shape(), "attention: v shape");
            assert_eq!(
                d % heads,
                0,
                "attention: d_model {d} not divisible by {heads} heads"
            );
            d
        };
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let kn = kernel::active();

        let mut out = self.buf(&[batch * tokens, d]);
        // probs laid out as [batch * heads * tokens, tokens]
        let mut probs = self.buf(&[batch * heads * tokens, tokens]);
        let mut scores_t = self.buf(&[tokens]);
        {
            let qv = &self.nodes[q.0].value;
            let kv = &self.nodes[k.0].value;
            let vv = &self.nodes[v.0].value;
            let scores = scores_t.as_mut_slice();
            for b in 0..batch {
                for h in 0..heads {
                    let hs = h * dh;
                    for i in 0..tokens {
                        let qrow = &qv.row(b * tokens + i)[hs..hs + dh];
                        for (j, s) in scores.iter_mut().enumerate() {
                            let krow = &kv.row(b * tokens + j)[hs..hs + dh];
                            *s = kernel::dot(kn, qrow, krow) * scale;
                        }
                        // softmax
                        let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let mut z = 0.0;
                        for s in scores.iter_mut() {
                            *s = (*s - m).exp();
                            z += *s;
                        }
                        let prow = probs.row_mut((b * heads + h) * tokens + i);
                        for (p, s) in prow.iter_mut().zip(scores.iter()) {
                            *p = s / z;
                        }
                        // out_i = Σ_j p_ij v_j
                        let prow = probs.row((b * heads + h) * tokens + i);
                        let orow = &mut out.row_mut(b * tokens + i)[hs..hs + dh];
                        for (j, &p) in prow.iter().enumerate() {
                            let vrow = &vv.row(b * tokens + j)[hs..hs + dh];
                            for (o, &x) in orow.iter_mut().zip(vrow) {
                                *o += p * x;
                            }
                        }
                    }
                }
            }
        }
        self.recycle(scores_t);
        let ng = self.ng(q) || self.ng(k) || self.ng(v);
        let saved = if self.record_grads {
            vec![probs]
        } else {
            self.recycle(probs);
            Vec::new()
        };
        self.push(
            out,
            Op::Attention {
                q,
                k,
                v,
                batch,
                heads,
                tokens,
            },
            saved,
            ng,
        )
    }

    /// Reinterprets the (row-major contiguous) value under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, a: VarId, shape: &[usize]) -> VarId {
        assert_eq!(
            self.nodes[a.0].value.len(),
            shape.iter().product::<usize>(),
            "reshape: cannot view {:?} as {:?}",
            self.nodes[a.0].value.shape(),
            shape
        );
        let mut out = self.buf(shape);
        out.as_mut_slice()
            .copy_from_slice(self.nodes[a.0].value.as_slice());
        let ng = self.ng(a);
        self.push(out, Op::Reshape(a), vec![], ng)
    }

    // ---- reductions & losses ----------------------------------------------

    /// Softmax cross-entropy against integer class targets, averaged over
    /// rows — the classification loss of the AIrchitect v1 baseline.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows or any
    /// target is out of range.
    pub fn cross_entropy_loss(&mut self, x: VarId, targets: &[usize]) -> VarId {
        let xv = self.value(x);
        let (r, c) = (xv.rows(), xv.cols());
        assert_eq!(
            targets.len(),
            r,
            "cross_entropy_loss: targets/rows mismatch"
        );
        assert!(
            targets.iter().all(|&t| t < c),
            "cross_entropy_loss: target class out of range"
        );
        let probs = xv.softmax_rows();
        let mut acc = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            acc -= (probs[(i, t)].max(1e-12) as f64).ln();
        }
        let loss = (acc / r as f64) as f32;
        let ng = self.ng(x);
        self.push(
            Tensor::from_slice(&[loss]),
            Op::CrossEntropyLoss {
                x,
                targets: targets.to_vec(),
            },
            vec![probs],
            ng,
        )
    }

    /// Mean over all elements, producing a scalar node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::from_slice(&[self.value(a).mean()]);
        let ng = self.ng(a);
        self.push(v, Op::MeanAll(a), vec![], ng)
    }

    /// Mean-squared-error loss against a constant target of the same shape.
    pub fn mse_loss(&mut self, x: VarId, target: Tensor) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape(), target.shape(), "mse_loss: shape mismatch");
        let loss = xv.sub(&target).map(|d| d * d).mean();
        let ng = self.ng(x);
        self.push(
            Tensor::from_slice(&[loss]),
            Op::MseLoss(x),
            vec![target],
            ng,
        )
    }

    /// Mean-absolute-error (L1) loss — the paper's performance-prediction
    /// loss `L_perf`.
    pub fn l1_loss(&mut self, x: VarId, target: Tensor) -> VarId {
        let xv = self.value(x);
        assert_eq!(xv.shape(), target.shape(), "l1_loss: shape mismatch");
        let loss = xv.sub(&target).map(f32::abs).mean();
        let ng = self.ng(x);
        self.push(Tensor::from_slice(&[loss]), Op::L1Loss(x), vec![target], ng)
    }

    /// Numerically stable binary cross-entropy on logits, averaged over all
    /// elements.
    pub fn bce_with_logits_loss(&mut self, x: VarId, target: Tensor) -> VarId {
        let xv = self.value(x);
        assert_eq!(
            xv.shape(),
            target.shape(),
            "bce_with_logits_loss: shape mismatch"
        );
        let mut acc = 0.0f64;
        for (&l, &t) in xv.as_slice().iter().zip(target.as_slice()) {
            // max(l,0) - l t + ln(1 + e^{-|l|})
            acc += (l.max(0.0) - l * t + (-l.abs()).exp().ln_1p()) as f64;
        }
        let loss = (acc / xv.len() as f64) as f32;
        let ng = self.ng(x);
        self.push(
            Tensor::from_slice(&[loss]),
            Op::BceWithLogitsLoss(x),
            vec![target],
            ng,
        )
    }

    /// Supervised infoNCE contrastive loss (paper Eq. 1).
    ///
    /// `z` holds one embedding per row (pre-normalised rows are expected —
    /// compose with [`Graph::normalize_rows`]); `labels[i]` is the UOV
    /// bucket class of sample `i`. For each anchor `p`, rows with the same
    /// label are positives `p⁺` and all other rows are negatives `p⁻`:
    ///
    /// `L = −log ( Σ_{p⁺} e^{z·z⁺/τ} / (Σ_{p⁺} e^{z·z⁺/τ} + Σ_{p⁻} e^{z·z⁻/τ}) )`
    ///
    /// averaged over anchors that have at least one positive; anchors
    /// without positives contribute nothing.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the number of rows.
    pub fn info_nce_loss(&mut self, z: VarId, labels: &[u32], tau: f32) -> VarId {
        let zv = self.value(z);
        let n = zv.rows();
        assert_eq!(labels.len(), n, "info_nce_loss: labels/rows mismatch");
        // Pairwise similarity exponentials e[i][j] = exp(z_i·z_j / tau)
        let sim = zv.matmul_nt(zv); // [n, n]
        let e = sim.map(|s| (s / tau).exp());
        let mut loss = 0.0f64;
        let mut anchors = 0usize;
        for i in 0..n {
            let mut s_pos = 0.0f64;
            let mut s_all = 0.0f64;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let eij = e[(i, j)] as f64;
                s_all += eij;
                if labels[j] == labels[i] {
                    s_pos += eij;
                }
            }
            if s_pos > 0.0 && s_all > 0.0 {
                loss -= (s_pos / s_all).ln();
                anchors += 1;
            }
        }
        let loss = if anchors > 0 {
            (loss / anchors as f64) as f32
        } else {
            0.0
        };
        let labels_t = Tensor::from_vec(labels.iter().map(|&l| l as f32).collect(), &[n])
            .expect("label length checked");
        let ng = self.ng(z);
        self.push(
            Tensor::from_slice(&[loss]),
            Op::InfoNceLoss { z, tau },
            vec![e, labels_t],
            ng,
        )
    }

    /// Unification loss for UOV heads (paper Eq. 3).
    ///
    /// `x` are raw logits `[B, K]`; `target` is the ground-truth UOV
    /// `q ∈ [0, 1]^{B×K}`. With `u = σ(x)`:
    ///
    /// * where `q > 0`:  `α · |q − u|^γ · BCE(u, q)`
    /// * where `q = 0`:  `(1 − α) · u^γ · BCE(u, q)`
    ///
    /// averaged over the batch (summed over the K buckets, matching the
    /// paper's `Σ_{i=0}^{K−1}`).
    pub fn unification_loss(&mut self, x: VarId, target: Tensor, alpha: f32, gamma: f32) -> VarId {
        let xv = self.value(x);
        assert_eq!(
            xv.shape(),
            target.shape(),
            "unification_loss: shape mismatch"
        );
        let b = xv.rows() as f64;
        let mut acc = 0.0f64;
        for (&l, &q) in xv.as_slice().iter().zip(target.as_slice()) {
            let u = sigmoid_fwd(l).clamp(UOV_EPS, 1.0 - UOV_EPS);
            let bce = -(q * u.ln() + (1.0 - q) * (1.0 - u).ln());
            let w = if q > 0.0 {
                alpha * (q - u).abs().powf(gamma)
            } else {
                (1.0 - alpha) * u.powf(gamma)
            };
            acc += (w * bce) as f64;
        }
        let loss = (acc / b) as f32;
        let ng = self.ng(x);
        self.push(
            Tensor::from_slice(&[loss]),
            Op::UnificationLoss { x, alpha, gamma },
            vec![target],
            ng,
        )
    }

    // ---- backward ---------------------------------------------------------

    /// Reverse-mode differentiation from scalar node `loss`.
    ///
    /// Returns the gradients of every parameter that participated in the
    /// computation. The tape remains valid afterwards (values can still be
    /// read), but gradients are not accumulated across calls.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&mut self, loss: VarId) -> Gradients {
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward: loss must be scalar, got {:?}",
            self.value(loss).shape()
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(&[1]));

        for idx in (0..n).rev() {
            if !self.nodes[idx].needs_grad {
                continue;
            }
            let Some(g) = grads[idx].take() else { continue };
            self.backprop_node(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }

        let mut out = Gradients::default();
        for (pid, vid) in &self.param_cache {
            if let Some(g) = grads[vid.0].take() {
                out.by_param.insert(*pid, g);
            }
        }
        out
    }

    fn backprop_node(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[idx];
        let accum = |grads: &mut [Option<Tensor>], v: VarId, delta: Tensor| {
            if !self.nodes[v.0].needs_grad {
                return;
            }
            match &mut grads[v.0] {
                Some(existing) => {
                    *existing = existing.add(&delta);
                }
                slot @ None => *slot = Some(delta),
            }
        };
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                accum(grads, *a, g.clone());
                accum(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                accum(grads, *a, g.clone());
                accum(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                accum(grads, *a, g.mul(self.value(*b)));
                accum(grads, *b, g.mul(self.value(*a)));
            }
            Op::AddRow(a, b) => {
                accum(grads, *a, g.clone());
                accum(grads, *b, g.sum_axis0());
            }
            Op::Scale(a, c) => accum(grads, *a, g.scale(*c)),
            Op::AddScalar(a) => accum(grads, *a, g.clone()),
            Op::Matmul(a, b) => {
                // dA = g Bᵀ ; dB = Aᵀ g
                accum(grads, *a, g.matmul_nt(self.value(*b)));
                accum(grads, *b, self.value(*a).matmul_tn(g));
            }
            Op::Relu(a) => {
                let d = self
                    .value(*a)
                    .zip_map(g, |x, gg| if x > 0.0 { gg } else { 0.0 });
                accum(grads, *a, d);
            }
            Op::LeakyRelu(a, s) => {
                let s = *s;
                let d = self
                    .value(*a)
                    .zip_map(g, |x, gg| if x >= 0.0 { gg } else { s * gg });
                accum(grads, *a, d);
            }
            Op::Gelu(a) => {
                let d = self.value(*a).zip_map(g, |x, gg| gg * gelu_grad(x));
                accum(grads, *a, d);
            }
            Op::Tanh(a) => {
                // y = tanh(x); dy/dx = 1 - y²
                let d = node.value.zip_map(g, |y, gg| gg * (1.0 - y * y));
                accum(grads, *a, d);
            }
            Op::Sigmoid(a) => {
                let d = node.value.zip_map(g, |y, gg| gg * y * (1.0 - y));
                accum(grads, *a, d);
            }
            Op::Exp(a) => {
                let d = node.value.mul(g);
                accum(grads, *a, d);
            }
            Op::SoftmaxRows(a) => {
                let p = &node.saved[0];
                let (r, c) = (p.rows(), p.cols());
                let mut d = Tensor::zeros(&[r, c]);
                for i in 0..r {
                    let prow = p.row(i);
                    let grow = g.row(i);
                    let dot: f32 = prow.iter().zip(grow).map(|(a, b)| a * b).sum();
                    for j in 0..c {
                        d[(i, j)] = prow[j] * (grow[j] - dot);
                    }
                }
                accum(grads, *a, d);
            }
            Op::LayerNorm { x, gamma, beta } => {
                let xhat = &node.saved[0];
                let inv_std = &node.saved[1];
                let gm = self.value(*gamma);
                let (r, c) = (xhat.rows(), xhat.cols());
                let mut dx = Tensor::zeros(&[r, c]);
                let mut dgamma = Tensor::zeros(&[c]);
                let mut dbeta = Tensor::zeros(&[c]);
                for i in 0..r {
                    let xh = xhat.row(i);
                    let grow = g.row(i);
                    let is = inv_std.at(i);
                    let mut mean_gy = 0.0f32;
                    let mut mean_gy_xh = 0.0f32;
                    for j in 0..c {
                        let gy = grow[j] * gm.at(j);
                        mean_gy += gy;
                        mean_gy_xh += gy * xh[j];
                    }
                    mean_gy /= c as f32;
                    mean_gy_xh /= c as f32;
                    for j in 0..c {
                        let gy = grow[j] * gm.at(j);
                        dx[(i, j)] = (gy - mean_gy - xh[j] * mean_gy_xh) * is;
                        dgamma.as_mut_slice()[j] += grow[j] * xh[j];
                        dbeta.as_mut_slice()[j] += grow[j];
                    }
                }
                accum(grads, *x, dx);
                accum(grads, *gamma, dgamma);
                accum(grads, *beta, dbeta);
            }
            Op::NormalizeRows(a) => {
                let y = &node.saved[0];
                let norms = &node.saved[1];
                let (r, c) = (y.rows(), y.cols());
                let mut d = Tensor::zeros(&[r, c]);
                for i in 0..r {
                    let yr = y.row(i);
                    let gr = g.row(i);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    let n = norms.at(i);
                    for j in 0..c {
                        d[(i, j)] = (gr[j] - yr[j] * dot) / n;
                    }
                }
                accum(grads, *a, d);
            }
            Op::MeanPoolTokens { x, tokens } => {
                let xv = self.value(*x);
                let (rt, c) = (xv.rows(), xv.cols());
                let mut d = Tensor::zeros(&[rt, c]);
                let b = rt / tokens;
                for bi in 0..b {
                    let grow = g.row(bi);
                    for t in 0..*tokens {
                        for (o, &gg) in d.row_mut(bi * tokens + t).iter_mut().zip(grow) {
                            *o = gg / *tokens as f32;
                        }
                    }
                }
                accum(grads, *x, d);
            }
            Op::RepeatTokens { x, tokens } => {
                let xv = self.value(*x);
                let (b, c) = (xv.rows(), xv.cols());
                let mut d = Tensor::zeros(&[b, c]);
                for bi in 0..b {
                    for t in 0..*tokens {
                        let grow = g.row(bi * tokens + t);
                        for (o, &gg) in d.row_mut(bi).iter_mut().zip(grow) {
                            *o += gg;
                        }
                    }
                }
                accum(grads, *x, d);
            }
            Op::Attention {
                q,
                k,
                v,
                batch,
                heads,
                tokens,
            } => {
                let (batch, heads, tokens) = (*batch, *heads, *tokens);
                let probs = &node.saved[0];
                let qv = self.value(*q);
                let kv = self.value(*k);
                let vv = self.value(*v);
                let d = qv.cols();
                let dh = d / heads;
                let scale = 1.0 / (dh as f32).sqrt();
                let mut dq = Tensor::zeros(&[batch * tokens, d]);
                let mut dk = Tensor::zeros(&[batch * tokens, d]);
                let mut dv = Tensor::zeros(&[batch * tokens, d]);
                let mut dprobs = vec![0.0f32; tokens];
                let mut dscores = vec![0.0f32; tokens];
                for b in 0..batch {
                    for h in 0..heads {
                        let hs = h * dh;
                        for i in 0..tokens {
                            let grow = &g.row(b * tokens + i)[hs..hs + dh];
                            let prow = probs.row((b * heads + h) * tokens + i);
                            // dV and dProbs
                            for j in 0..tokens {
                                let vrow = &vv.row(b * tokens + j)[hs..hs + dh];
                                dprobs[j] = grow.iter().zip(vrow).map(|(a, b)| a * b).sum();
                                let dvrow = &mut dv.row_mut(b * tokens + j)[hs..hs + dh];
                                for (o, &gg) in dvrow.iter_mut().zip(grow) {
                                    *o += prow[j] * gg;
                                }
                            }
                            // softmax backward
                            let dot: f32 = prow.iter().zip(&dprobs).map(|(a, b)| a * b).sum();
                            #[allow(clippy::needless_range_loop)]
                            for j in 0..tokens {
                                dscores[j] = prow[j] * (dprobs[j] - dot);
                            }
                            // dQ_i += Σ_j dS_ij K_j · scale ; dK_j += dS_ij Q_i · scale
                            let qrow: Vec<f32> = qv.row(b * tokens + i)[hs..hs + dh].to_vec();
                            let dqrow = &mut dq.row_mut(b * tokens + i)[hs..hs + dh];
                            #[allow(clippy::needless_range_loop)]
                            for j in 0..tokens {
                                let ds = dscores[j] * scale;
                                if ds == 0.0 {
                                    continue;
                                }
                                let krow = &kv.row(b * tokens + j)[hs..hs + dh];
                                for (o, &kk) in dqrow.iter_mut().zip(krow) {
                                    *o += ds * kk;
                                }
                                let dkrow = &mut dk.row_mut(b * tokens + j)[hs..hs + dh];
                                for (o, &qq) in dkrow.iter_mut().zip(&qrow) {
                                    *o += ds * qq;
                                }
                            }
                        }
                    }
                }
                accum(grads, *q, dq);
                accum(grads, *k, dk);
                accum(grads, *v, dv);
            }
            Op::Reshape(a) => {
                let d = g.reshape(self.value(*a).shape());
                accum(grads, *a, d);
            }
            Op::CrossEntropyLoss { x, targets } => {
                let probs = &node.saved[0];
                let (r, c) = (probs.rows(), probs.cols());
                let gg = g.at(0) / r as f32;
                let mut d = probs.scale(gg);
                for (i, &t) in targets.iter().enumerate() {
                    d[(i, t)] -= gg;
                    let _ = c;
                }
                accum(grads, *x, d);
            }
            Op::MeanAll(a) => {
                let xv = self.value(*a);
                let gg = g.at(0) / xv.len() as f32;
                accum(grads, *a, Tensor::full(xv.shape(), gg));
            }
            Op::MseLoss(x) => {
                let xv = self.value(*x);
                let t = &node.saved[0];
                let gg = g.at(0) * 2.0 / xv.len() as f32;
                accum(grads, *x, xv.sub(t).scale(gg));
            }
            Op::L1Loss(x) => {
                let xv = self.value(*x);
                let t = &node.saved[0];
                let gg = g.at(0) / xv.len() as f32;
                let d = xv.zip_map(t, |a, b| (a - b).signum() * gg);
                accum(grads, *x, d);
            }
            Op::BceWithLogitsLoss(x) => {
                let xv = self.value(*x);
                let t = &node.saved[0];
                let gg = g.at(0) / xv.len() as f32;
                let d = xv.zip_map(t, |l, tt| (sigmoid_fwd(l) - tt) * gg);
                accum(grads, *x, d);
            }
            Op::InfoNceLoss { z, tau } => {
                let e = &node.saved[0];
                let labels = &node.saved[1];
                let zv = self.value(*z);
                let n = zv.rows();
                // per-anchor sums
                let mut s_pos = vec![0.0f64; n];
                let mut s_all = vec![0.0f64; n];
                for i in 0..n {
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        let eij = e[(i, j)] as f64;
                        s_all[i] += eij;
                        if labels.at(j) == labels.at(i) {
                            s_pos[i] += eij;
                        }
                    }
                }
                let anchors = s_pos.iter().filter(|&&p| p > 0.0).count();
                if anchors == 0 {
                    return;
                }
                let gg = g.at(0) / anchors as f32;
                // dL/ds_ij (i anchor): positives: e_ij (1/S_all - 1/S_pos);
                //                       negatives: e_ij / S_all
                // s_ij = z_i · z_j / tau  →  dz_i += coeff · z_j / tau, dz_j += coeff · z_i / tau
                let mut dz = Tensor::zeros(&[n, zv.cols()]);
                for i in 0..n {
                    if s_pos[i] == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        let eij = e[(i, j)] as f64;
                        let coeff = if labels.at(j) == labels.at(i) {
                            eij * (1.0 / s_all[i] - 1.0 / s_pos[i])
                        } else {
                            eij / s_all[i]
                        } as f32
                            * gg
                            / tau;
                        if coeff == 0.0 {
                            continue;
                        }
                        let zj = zv.row(j);
                        let zi = zv.row(i);
                        // split borrows: rows i and j of dz
                        for (c, (&a, &b)) in zj.iter().zip(zi).enumerate() {
                            dz[(i, c)] += coeff * a;
                            dz[(j, c)] += coeff * b;
                        }
                    }
                }
                accum(grads, *z, dz);
            }
            Op::UnificationLoss { x, alpha, gamma } => {
                let xv = self.value(*x);
                let t = &node.saved[0];
                let b = xv.rows() as f32;
                let gg = g.at(0) / b;
                let (alpha, gamma) = (*alpha, *gamma);
                let d = xv.zip_map(t, |l, q| {
                    let u = sigmoid_fwd(l).clamp(UOV_EPS, 1.0 - UOV_EPS);
                    let du = u * (1.0 - u); // dσ/dx
                    let bce = -(q * u.ln() + (1.0 - q) * (1.0 - u).ln());
                    let dbce_dx = u - q; // d(BCE)/dx through the sigmoid
                    let (w, dw_dx) = if q > 0.0 {
                        let diff = q - u;
                        let w = alpha * diff.abs().powf(gamma);
                        // d|q-u|^γ/dx = γ|q-u|^{γ-1} · sign(q-u) · (-du)
                        let dw = if diff.abs() > UOV_EPS {
                            alpha * gamma * diff.abs().powf(gamma - 1.0) * diff.signum() * (-du)
                        } else {
                            0.0
                        };
                        (w, dw)
                    } else {
                        let w = (1.0 - alpha) * u.powf(gamma);
                        let dw = (1.0 - alpha) * gamma * u.powf(gamma - 1.0) * du;
                        (w, dw)
                    };
                    gg * (dw_dx * bce + w * dbce_dx)
                });
                accum(grads, *x, d);
            }
        }
    }
}

/// Clamp bound keeping `σ(x)` away from {0, 1} inside the unification
/// loss, so `ln` and `pow` stay finite.
const UOV_EPS: f32 = 1e-6;

fn sigmoid_fwd(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        ParamStore::new(7)
    }

    #[test]
    fn forward_values_are_recorded() {
        let s = store();
        let mut g = Graph::new(&s);
        let a = g.constant(Tensor::from_slice(&[1.0, 2.0]).reshape(&[1, 2]));
        let b = g.constant(Tensor::from_slice(&[3.0, 4.0]).reshape(&[1, 2]));
        let c = g.add(a, b);
        assert_eq!(g.value(c).as_slice(), &[4.0, 6.0]);
        let d = g.mul(a, b);
        assert_eq!(g.value(d).as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn param_nodes_are_cached() {
        let mut s = store();
        let w = s.add_zeros("w", &[2, 2]);
        let mut g = Graph::new(&s);
        let v1 = g.param(w);
        let v2 = g.param(w);
        assert_eq!(v1, v2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn simple_linear_gradient() {
        // loss = mean((x·w)²) for x = [1, 2], w = [w0, w1]ᵀ, w = [0.5, -1]
        // y = 0.5 - 2 = -1.5; loss = y²; dL/dw = 2y·x = [-3, -6]
        let mut s = store();
        let w = s.add("w", Tensor::from_vec(vec![0.5, -1.0], &[2, 1]).unwrap());
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let wv = g.param(w);
        let y = g.matmul(x, wv);
        let loss = g.mse_loss(y, Tensor::zeros(&[1, 1]));
        assert!((g.scalar(loss) - 2.25).abs() < 1e-6);
        let grads = g.backward(loss);
        let gw = grads.get(w).unwrap();
        assert!((gw.at(0) + 3.0).abs() < 1e-5, "{:?}", gw.as_slice());
        assert!((gw.at(1) + 6.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        // loss = mean((w + w)²) = 4w² → dL/dw = 8w
        let mut s = store();
        let w = s.add("w", Tensor::from_slice(&[3.0]));
        let mut g = Graph::new(&s);
        let wv = g.param(w);
        let two_w = g.add(wv, wv);
        let loss = g.mse_loss(two_w, Tensor::zeros(&[1]));
        let grads = g.backward(loss);
        assert!((grads.get(w).unwrap().at(0) - 24.0).abs() < 1e-4);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut s = store();
        let w = s.add("w", Tensor::from_slice(&[1.0]));
        let mut g = Graph::new(&s);
        let c = g.constant(Tensor::from_slice(&[5.0]));
        let wv = g.param(w);
        let y = g.mul(c, wv);
        let loss = g.mse_loss(y, Tensor::zeros(&[1]));
        let grads = g.backward(loss);
        assert_eq!(grads.len(), 1);
        assert!((grads.get(w).unwrap().at(0) - 50.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_backward_is_zero_sum() {
        let s = store();
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let p = g.softmax_rows(x);
        let total: f32 = g.value(p).as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn info_nce_prefers_aligned_positives() {
        // two classes; anchors aligned with their class direction
        let s = store();
        let mut g = Graph::new(&s);
        let aligned = Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0]]);
        let z = g.constant(aligned);
        let loss_good = g.info_nce_loss(z, &[0, 0, 1, 1], 0.4);

        let mut g2 = Graph::new(&s);
        let mixed = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let z2 = g2.constant(mixed);
        let loss_bad = g2.info_nce_loss(z2, &[0, 0, 1, 1], 0.4);

        assert!(g.scalar(loss_good) < g2.scalar(loss_bad));
    }

    #[test]
    fn info_nce_no_positives_is_zero() {
        let s = store();
        let mut g = Graph::new(&s);
        let z = g.constant(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let loss = g.info_nce_loss(z, &[0, 1], 0.4);
        assert_eq!(g.scalar(loss), 0.0);
    }

    #[test]
    fn unification_loss_zero_at_perfect_prediction() {
        let s = store();
        let mut g = Graph::new(&s);
        // logits that sigmoid to ≈ the target
        let target = Tensor::from_rows(&[&[0.9, 0.5, 0.0]]);
        let logits = Tensor::from_rows(&[&[(0.9f32 / 0.1).ln(), 0.0, -20.0]]);
        let x = g.constant(logits);
        let loss = g.unification_loss(x, target, 0.75, 1.0);
        assert!(g.scalar(loss) < 0.05, "loss {}", g.scalar(loss));
    }

    #[test]
    fn unification_loss_penalises_far_buckets_more() {
        let s = store();
        // target: bucket 1 of 4 (UOV [0.8, 0, 0, 0] say)
        let target = Tensor::from_rows(&[&[0.8, 0.0, 0.0, 0.0]]);
        // prediction A: mass on bucket 1 (close) vs B: mass on bucket 3 (far)
        let mut ga = Graph::new(&s);
        let xa = ga.constant(Tensor::from_rows(&[&[2.0, -4.0, -4.0, -4.0]]));
        let la = ga.unification_loss(xa, target.clone(), 0.75, 1.0);
        let mut gb = Graph::new(&s);
        let xb = gb.constant(Tensor::from_rows(&[&[-4.0, -4.0, -4.0, 2.0]]));
        let lb = gb.unification_loss(xb, target, 0.75, 1.0);
        assert!(ga.scalar(la) < gb.scalar(lb));
    }

    #[test]
    fn attention_uniform_when_query_is_zero() {
        let s = store();
        let mut g = Graph::new(&s);
        let tokens = 3;
        let q = g.constant(Tensor::zeros(&[tokens, 4]));
        let k = g.constant(Tensor::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]));
        let v = g.constant(Tensor::from_rows(&[
            &[3.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 0.0],
            &[0.0, 0.0, 3.0, 0.0],
        ]));
        let out = g.attention(q, k, v, 1, 1, tokens);
        // zero queries → uniform attention → mean of V rows
        for t in 0..tokens {
            let row = g.value(out).row(t);
            assert!((row[0] - 1.0).abs() < 1e-5);
            assert!((row[1] - 1.0).abs() < 1e-5);
            assert!((row[2] - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn token_pool_and_repeat_shapes() {
        let s = store();
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
            &[7.0, 8.0],
        ]));
        let pooled = g.mean_pool_tokens(x, 2);
        assert_eq!(g.value(pooled).shape(), &[2, 2]);
        assert_eq!(g.value(pooled).row(0), &[2.0, 3.0]);
        let rep = g.repeat_tokens(pooled, 2);
        assert_eq!(g.value(rep).shape(), &[4, 2]);
        assert_eq!(g.value(rep).row(1), &[2.0, 3.0]);
    }

    #[test]
    fn bce_matches_manual_value() {
        let s = store();
        let mut g = Graph::new(&s);
        let x = g.constant(Tensor::from_slice(&[0.0]));
        let loss = g.bce_with_logits_loss(x, Tensor::from_slice(&[1.0]));
        // -ln(σ(0)) = ln 2
        assert!((g.scalar(loss) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn arena_forward_matches_fresh_graph_bit_for_bit() {
        let mut s = store();
        let w = s.add("w", Tensor::from_rows(&[&[0.3, -0.2], &[0.1, 0.7]]));
        let b = s.add("b", Tensor::from_slice(&[0.05, -0.4]));
        let gm = s.add("gm", Tensor::ones(&[2]));
        let bt = s.add("bt", Tensor::zeros(&[2]));
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25], &[3.0, -1.0], &[0.0, 0.0]]);

        let run = |g: &mut Graph| -> Tensor {
            let xi = g.input(&x);
            let wv = g.param(w);
            let bv = g.param(b);
            let h = g.matmul(xi, wv);
            let h = g.add_row(h, bv);
            let h = g.gelu(h);
            let gmv = g.param(gm);
            let btv = g.param(bt);
            let h = g.layer_norm(h, gmv, btv, 1e-5);
            let h = g.attention(h, h, h, 2, 1, 2);
            let pooled = g.mean_pool_tokens(h, 2);
            let out = g.sigmoid(pooled);
            g.value(out).clone()
        };

        let mut fresh = Graph::new(&s);
        let expect = run(&mut fresh);

        let mut arena = Arena::new();
        let mut first_pass: Option<Tensor> = None;
        for pass in 0..3 {
            let mut g = Graph::with_arena(&s, arena);
            let got = run(&mut g);
            // Inference mode matches the training-mode forward to rounding
            // (the fused layernorm kernel rounds once where the training
            // path rounds twice)…
            assert!(
                got.max_abs_diff(&expect) <= 1e-6,
                "arena pass {pass} diverged from fresh graph"
            );
            // …and repeated arena passes are bit-identical to each other.
            match &first_pass {
                None => first_pass = Some(got),
                Some(reference) => assert_eq!(
                    got.as_slice(),
                    reference.as_slice(),
                    "arena pass {pass} not reproducible"
                ),
            }
            arena = g.into_arena();
            assert!(arena.pooled() > 0);
        }
    }

    #[test]
    fn arena_graph_records_no_gradients() {
        let mut s = store();
        let w = s.add("w", Tensor::from_slice(&[2.0]));
        let mut g = Graph::with_arena(&s, Arena::new());
        let wv = g.param(w);
        let y = g.mul(wv, wv);
        let loss = g.mse_loss(y, Tensor::zeros(&[1]));
        let grads = g.backward(loss);
        assert!(grads.is_empty());
    }

    #[test]
    fn arena_pool_is_stable_after_warmup() {
        let mut s = store();
        let w = s.add("w", Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut arena = Arena::new();
        let mut pooled_after_warmup = 0;
        for pass in 0..4 {
            let mut g = Graph::with_arena(&s, arena);
            let xi = g.input(&x);
            let wv = g.param(w);
            let y = g.matmul(xi, wv);
            let _ = g.relu(y);
            arena = g.into_arena();
            if pass == 0 {
                pooled_after_warmup = arena.pooled();
            } else {
                assert_eq!(
                    arena.pooled(),
                    pooled_after_warmup,
                    "pool grew on pass {pass}"
                );
            }
        }
    }

    #[test]
    fn grad_norm_and_clip() {
        let mut s = store();
        let w = s.add("w", Tensor::from_slice(&[3.0, 4.0]));
        let mut g = Graph::new(&s);
        let wv = g.param(w);
        let loss = g.mse_loss(wv, Tensor::zeros(&[2]));
        let mut grads = g.backward(loss);
        let n = grads.global_norm();
        assert!(n > 0.0);
        grads.scale_all(1.0 / n);
        assert!((grads.global_norm() - 1.0).abs() < 1e-4);
    }
}
