//! First-order optimizers and learning-rate schedules.

use ai2_tensor::Tensor;

use crate::graph::Gradients;
use crate::params::ParamStore;

/// Common interface for parameter-updating optimizers.
pub trait Optimizer {
    /// Applies one update step given the gradients of a backward pass.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// Current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the base learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (pid, g) in grads.iter() {
            let idx = pid.index();
            if self.velocity.len() <= idx {
                self.velocity.resize(idx + 1, None);
            }
            let p = store.get_mut(pid);
            if self.momentum > 0.0 {
                let v = self.velocity[idx].get_or_insert_with(|| Tensor::zeros(g.shape()));
                *v = v.scale(self.momentum).add(g);
                *p = p.sub(&v.scale(self.lr));
            } else {
                *p = p.sub(&g.scale(self.lr));
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: decoupled weight decay applied to every updated parameter.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        let mut a = Self::new(lr);
        a.weight_decay = weight_decay;
        a
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (pid, g) in grads.iter() {
            let idx = pid.index();
            if self.m.len() <= idx {
                self.m.resize(idx + 1, None);
                self.v.resize(idx + 1, None);
            }
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(g.shape()));
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            *v = v
                .scale(self.beta2)
                .add(&g.map(|x| x * x).scale(1.0 - self.beta2));
            let p = store.get_mut(pid);
            let mhat = m.scale(1.0 / bc1);
            let vhat = v.scale(1.0 / bc2);
            let update = mhat.zip_map(&vhat, |mm, vv| mm / (vv.sqrt() + self.eps));
            if self.weight_decay > 0.0 {
                *p = p.scale(1.0 - self.lr * self.weight_decay);
            }
            *p = p.sub(&update.scale(self.lr));
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Learning-rate schedules evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Cosine decay from the base LR to `min_lr` over `total_epochs`.
    Cosine {
        /// Final learning rate.
        min_lr: f32,
        /// Number of epochs over which to decay.
        total_epochs: usize,
    },
    /// Multiply the LR by `factor` every `every` epochs.
    Step {
        /// Multiplicative decay factor (e.g. 0.5).
        factor: f32,
        /// Epoch interval between decays.
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(self, base_lr: f32, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => base_lr,
            LrSchedule::Cosine {
                min_lr,
                total_epochs,
            } => {
                let t = (epoch as f32 / total_epochs.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Step { factor, every } => {
                base_lr * factor.powi((epoch / every.max(1)) as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimises mean((w - 3)²) and checks convergence to w = 3.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut s = ParamStore::new(5);
        let w = s.add("w", Tensor::from_slice(&[0.0]));
        for _ in 0..steps {
            let mut g = Graph::new(&s);
            let wv = g.param(w);
            let loss = g.mse_loss(wv, Tensor::from_slice(&[3.0]));
            let grads = g.backward(loss);
            opt.step(&mut s, &grads);
        }
        s.get(w).at(0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converges_to_three(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adamw_decays_unused_direction() {
        // weight decay pulls parameters toward zero relative to plain Adam
        let mut plain = Adam::new(0.01);
        let mut decayed = Adam::with_weight_decay(0.01, 0.5);
        let w_plain = converges_to_three(&mut plain, 300);
        let w_decayed = converges_to_three(&mut decayed, 300);
        assert!(w_decayed < w_plain, "{w_decayed} !< {w_plain}");
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            min_lr: 1e-5,
            total_epochs: 100,
        };
        assert!((s.lr_at(1e-3, 0) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(1e-3, 100) - 1e-5).abs() < 1e-7);
        assert!(s.lr_at(1e-3, 50) < 1e-3);
        assert!(s.lr_at(1e-3, 50) > 1e-5);
    }

    #[test]
    fn step_schedule_halves() {
        let s = LrSchedule::Step {
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(1.0, 9), 1.0);
        assert_eq!(s.lr_at(1.0, 10), 0.5);
        assert_eq!(s.lr_at(1.0, 25), 0.25);
    }
}
