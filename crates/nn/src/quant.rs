//! Int8 symmetric weight quantization for inference-only linear layers.
//!
//! A [`QuantizedLinear`] stores a layer's weight matrix transposed as
//! `[out_dim, in_dim]` rows of `i8` with one `f32` scale per output row
//! (symmetric per-output-channel quantization, `w ≈ q · scale`). At
//! inference each activation row is quantized symmetrically on the fly,
//! the product accumulates in `i32` via [`kernel::dot_i8`], and the
//! result is rescaled to `f32` — the serving-side int8 decoder flavor.
//!
//! Quantized modules are built through the `quantized` methods on the
//! [`crate::layers`] modules, which pull each weight through a caller
//! supplied [`QuantSource`]. Two sources exist in practice: *fresh*
//! quantization of the `f32` store (publishing a checkpoint flavor) and
//! restore from previously stored `i8` data (never re-quantized, so a
//! restored replica is bit-identical to its publisher).

use ai2_tensor::kernel;
use ai2_tensor::Tensor;

/// Why a quantized module could not be built from checkpoint data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The quantized blob holds no tensor under this parameter name.
    Missing(String),
    /// The stored tensor's dimensions disagree with the module's.
    ShapeMismatch {
        /// Parameter name of the offending weight.
        name: String,
        /// `(in_dim, out_dim)` the module expects.
        expected: (usize, usize),
        /// `(in_dim, out_dim)` the source produced.
        found: (usize, usize),
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Missing(name) => {
                write!(f, "quantized blob is missing tensor {name:?}")
            }
            QuantError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "quantized tensor {name:?} has dims {found:?}, module expects {expected:?}"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

/// Where a quantized module draws its weights from. Called once per
/// linear layer with the weight's registered name and its `f32` value.
pub type QuantSource<'a> = dyn FnMut(&str, &Tensor) -> Result<QuantizedLinear, QuantError> + 'a;

/// An int8 per-output-channel quantized view of a `[in_dim, out_dim]`
/// linear weight.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Transposed weight `[out_dim, in_dim]`: row `j` is column `j` of
    /// the original matrix, so the inner product over `in_dim` is a
    /// contiguous [`kernel::dot_i8`].
    wt: Vec<i8>,
    /// One dequantization scale per output channel.
    scales: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantizes an `f32` weight of shape `[in_dim, out_dim]`.
    ///
    /// Deterministic: the same weight always produces the same `i8` data,
    /// so independently quantized copies of one checkpoint agree
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2.
    pub fn from_weight(w: &Tensor) -> QuantizedLinear {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        let src = w.as_slice();
        let mut scales = vec![0.0f32; out_dim];
        for (j, s) in scales.iter_mut().enumerate() {
            let mut amax = 0.0f32;
            for i in 0..in_dim {
                amax = amax.max(src[i * out_dim + j].abs());
            }
            *s = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        }
        let mut wt = vec![0i8; in_dim * out_dim];
        for j in 0..out_dim {
            let s = scales[j];
            for i in 0..in_dim {
                let q = (src[i * out_dim + j] / s).round().clamp(-127.0, 127.0);
                wt[j * in_dim + i] = q as i8;
            }
        }
        QuantizedLinear {
            wt,
            scales,
            in_dim,
            out_dim,
        }
    }

    /// Rebuilds a layer from stored data (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the dimensions.
    pub fn from_parts(
        wt: Vec<i8>,
        scales: Vec<f32>,
        in_dim: usize,
        out_dim: usize,
    ) -> QuantizedLinear {
        assert_eq!(wt.len(), in_dim * out_dim, "QuantizedLinear: weight size");
        assert_eq!(scales.len(), out_dim, "QuantizedLinear: scale count");
        QuantizedLinear {
            wt,
            scales,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The transposed `[out_dim, in_dim]` int8 weight data.
    pub fn weights_i8(&self) -> &[i8] {
        &self.wt
    }

    /// Per-output-channel dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// `out[r, j] = Σ_k x[r, k]·w[k, j]`, accumulated in `i32`.
    ///
    /// `qrow` is reusable scratch for the quantized activation row; its
    /// capacity is retained across calls so warm passes do not allocate.
    pub fn forward_into(&self, x: &[f32], rows: usize, out: &mut [f32], qrow: &mut Vec<i8>) {
        debug_assert_eq!(x.len(), rows * self.in_dim);
        debug_assert_eq!(out.len(), rows * self.out_dim);
        let kn = kernel::active();
        let k = self.in_dim;
        qrow.clear();
        qrow.resize(k, 0);
        for r in 0..rows {
            let xr = &x[r * k..(r + 1) * k];
            let mut amax = 0.0f32;
            for &v in xr {
                amax = amax.max(v.abs());
            }
            let xs = if amax > 0.0 { amax / 127.0 } else { 1.0 };
            let inv = 1.0 / xs;
            for (q, &v) in qrow.iter_mut().zip(xr) {
                *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
            }
            let orow = &mut out[r * self.out_dim..(r + 1) * self.out_dim];
            for (j, o) in orow.iter_mut().enumerate() {
                let acc = kernel::dot_i8(kn, qrow, &self.wt[j * k..(j + 1) * k]);
                *o = acc as f32 * (xs * self.scales[j]);
            }
        }
    }
}

/// Quantized weights of a [`crate::layers::MultiHeadSelfAttention`].
#[derive(Debug, Clone)]
pub struct QuantizedAttention {
    pub(crate) wq: QuantizedLinear,
    pub(crate) wk: QuantizedLinear,
    pub(crate) wv: QuantizedLinear,
    pub(crate) wo: QuantizedLinear,
}

/// Quantized weights of a [`crate::layers::FeedForward`].
#[derive(Debug, Clone)]
pub struct QuantizedFeedForward {
    pub(crate) l1: QuantizedLinear,
    pub(crate) l2: QuantizedLinear,
}

/// Quantized weights of a [`crate::layers::TransformerBlock`] (the
/// layer-norm gains/biases stay `f32`; only the matmul weights shrink).
#[derive(Debug, Clone)]
pub struct QuantizedBlock {
    pub(crate) attn: QuantizedAttention,
    pub(crate) ffn: QuantizedFeedForward,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ai2_tensor::rng;

    #[test]
    fn roundtrip_error_is_bounded_by_one_step() {
        let mut r = rng::seeded(3);
        let w = rng::rand_uniform(&mut r, &[24, 17], -2.0, 2.0);
        let q = QuantizedLinear::from_weight(&w);
        let wd = w.as_slice();
        for j in 0..17 {
            let s = q.scales()[j];
            for i in 0..24 {
                let deq = f32::from(q.weights_i8()[j * 24 + i]) * s;
                assert!(
                    (deq - wd[i * 17 + j]).abs() <= s * 0.5 + 1e-7,
                    "dequantized value off by more than half a step"
                );
            }
        }
    }

    #[test]
    fn forward_tracks_f32_matmul() {
        let mut r = rng::seeded(5);
        let w = rng::rand_uniform(&mut r, &[32, 16], -1.0, 1.0);
        let x = rng::rand_uniform(&mut r, &[4, 32], -1.0, 1.0);
        let q = QuantizedLinear::from_weight(&w);
        let mut out = vec![0.0f32; 4 * 16];
        let mut scratch = Vec::new();
        q.forward_into(x.as_slice(), 4, &mut out, &mut scratch);
        let want = x.matmul(&w);
        for (got, want) in out.iter().zip(want.as_slice()) {
            // Two int8 quantizations (activation + weight) over unit-range
            // data on k = 32: generous absolute bound.
            assert!(
                (got - want).abs() < 0.15,
                "quantized forward drifted: {got} vs {want}"
            );
        }
    }

    #[test]
    fn from_parts_restores_bit_identical_forward() {
        let mut r = rng::seeded(7);
        let w = rng::rand_uniform(&mut r, &[12, 9], -1.0, 1.0);
        let x = rng::rand_uniform(&mut r, &[3, 12], -1.0, 1.0);
        let q = QuantizedLinear::from_weight(&w);
        let q2 = QuantizedLinear::from_parts(
            q.weights_i8().to_vec(),
            q.scales().to_vec(),
            q.in_dim(),
            q.out_dim(),
        );
        let (mut a, mut b) = (vec![0.0f32; 27], vec![0.0f32; 27]);
        let mut scratch = Vec::new();
        q.forward_into(x.as_slice(), 3, &mut a, &mut scratch);
        q2.forward_into(x.as_slice(), 3, &mut b, &mut scratch);
        assert_eq!(a, b, "restored layer must be bit-identical");
    }

    #[test]
    fn zero_rows_and_zero_weights_are_exact() {
        let w = Tensor::zeros(&[5, 3]);
        let q = QuantizedLinear::from_weight(&w);
        let x = vec![0.0f32; 10];
        let mut out = vec![9.0f32; 6];
        let mut scratch = Vec::new();
        q.forward_into(&x, 2, &mut out, &mut scratch);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
