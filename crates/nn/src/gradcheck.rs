//! Finite-difference gradient checking.
//!
//! Every fused op in [`crate::Graph`] (attention, layer-norm, the infoNCE
//! and unification losses) has a hand-derived backward pass; this module
//! verifies them against central differences. It is exercised heavily in
//! this crate's test suite and exported so downstream crates can check
//! their composite models too.

use crate::graph::{Gradients, Graph};
use crate::params::{ParamId, ParamStore};

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Parameter name.
    pub name: String,
    /// Largest relative error over all elements checked.
    pub max_rel_err: f32,
    /// Largest absolute error over all elements checked.
    pub max_abs_err: f32,
}

/// Compares analytic gradients against central finite differences.
///
/// `f` must build a scalar loss from a fresh [`Graph`] over `store`;
/// it is called `2·n + 1` times where `n` is the number of scalar
/// parameters perturbed. Perturbation step is `eps`.
///
/// Returns one report per parameter. A healthy op satisfies
/// `max_rel_err < 1e-2` with `eps = 1e-3` in `f32`.
pub fn check_gradients(
    store: &mut ParamStore,
    params: &[ParamId],
    eps: f32,
    mut f: impl FnMut(&ParamStore) -> (f32, Gradients),
) -> Vec<GradCheckReport> {
    let (_, analytic) = f(store);
    let mut reports = Vec::new();
    for &pid in params {
        let n = store.get(pid).len();
        let name = store.name(pid).to_owned();
        let mut max_rel: f32 = 0.0;
        let mut max_abs: f32 = 0.0;
        for i in 0..n {
            let orig = store.get(pid).at(i);
            store.get_mut(pid).as_mut_slice()[i] = orig + eps;
            let (lp, _) = f(store);
            store.get_mut(pid).as_mut_slice()[i] = orig - eps;
            let (lm, _) = f(store);
            store.get_mut(pid).as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic_g = analytic.get(pid).map_or(0.0, |g| g.at(i));
            let abs = (numeric - analytic_g).abs();
            // The 1e-3 floor keeps f32 finite-difference noise on
            // near-zero gradients from masquerading as backward bugs;
            // genuine errors produce relative errors of O(1).
            let rel = abs / numeric.abs().max(analytic_g.abs()).max(1e-3);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(GradCheckReport {
            name,
            max_rel_err: max_rel,
            max_abs_err: max_abs,
        });
    }
    reports
}

/// Convenience assertion over [`check_gradients`].
///
/// # Panics
///
/// Panics if any parameter's maximum relative error exceeds `tol`.
pub fn assert_gradients_close(
    store: &mut ParamStore,
    params: &[ParamId],
    eps: f32,
    tol: f32,
    f: impl FnMut(&ParamStore) -> (f32, Gradients),
) {
    let reports = check_gradients(store, params, eps, f);
    for r in &reports {
        assert!(
            r.max_rel_err < tol,
            "gradient check failed for {:?}: rel err {} (abs {})",
            r.name,
            r.max_rel_err,
            r.max_abs_err
        );
    }
}

/// Helper: runs `build` on a fresh graph and returns `(loss, grads)`.
///
/// Most gradient-check closures are exactly this pattern.
pub fn loss_and_grads(
    store: &ParamStore,
    build: impl FnOnce(&mut Graph<'_>) -> crate::graph::VarId,
) -> (f32, Gradients) {
    let mut g = Graph::new(store);
    let loss = build(&mut g);
    let value = g.scalar(loss);
    let grads = g.backward(loss);
    (value, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{
        Activation, LayerNorm, Linear, Mlp, MultiHeadSelfAttention, TransformerBlock,
    };
    use ai2_tensor::{rng, Tensor};

    const EPS: f32 = 1e-2;
    const TOL: f32 = 3e-2;

    fn input(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut r = rng::seeded(seed);
        rng::rand_uniform(&mut r, &[rows, cols], -1.0, 1.0)
    }

    #[test]
    fn linear_mse_gradients() {
        let mut s = ParamStore::new(11);
        let lin = Linear::new(&mut s, "l", 3, 2, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 3, 1);
        let t = input(4, 2, 2);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv);
                g.mse_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn mlp_l1_gradients() {
        let mut s = ParamStore::new(12);
        let mlp = Mlp::new(&mut s, "m", &[3, 5, 2], Activation::Gelu);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 3, 3);
        let t = input(4, 2, 4);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = mlp.forward(g, xv);
                g.l1_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn layernorm_gradients() {
        let mut s = ParamStore::new(13);
        let ln = LayerNorm::new(&mut s, "ln", 4);
        // include an upstream linear so dx of layer-norm is exercised
        let lin = Linear::new(&mut s, "l", 4, 4, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(3, 4, 5);
        let t = input(3, 4, 6);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let h = lin.forward(g, xv);
                let y = ln.forward(g, h);
                g.mse_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn attention_gradients() {
        let mut s = ParamStore::new(14);
        let attn = MultiHeadSelfAttention::new(&mut s, "a", 4, 2);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(6, 4, 7); // batch 2, tokens 3
        let t = input(6, 4, 8);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = attn.forward(g, xv, 2, 3);
                g.mse_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn transformer_block_gradients() {
        let mut s = ParamStore::new(15);
        let blk = TransformerBlock::new(&mut s, "b", 4, 2);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 4, 9); // batch 2, tokens 2
        let t = input(4, 4, 10);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = blk.forward(g, xv, 2, 2);
                g.mse_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn info_nce_gradients() {
        let mut s = ParamStore::new(16);
        let lin = Linear::new(&mut s, "l", 3, 4, false);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(6, 3, 11);
        let labels = [0u32, 0, 1, 1, 2, 2];
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let z = lin.forward(g, xv);
                let zn = g.normalize_rows(z);
                g.info_nce_loss(zn, &labels, 0.4)
            })
        });
    }

    #[test]
    fn unification_loss_gradients() {
        let mut s = ParamStore::new(17);
        let lin = Linear::new(&mut s, "l", 3, 5, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 3, 12);
        // UOV-like targets: monotone ramp then zeros
        let t = Tensor::from_rows(&[
            &[0.9, 0.6, 0.0, 0.0, 0.0],
            &[0.8, 0.0, 0.0, 0.0, 0.0],
            &[0.95, 0.9, 0.7, 0.3, 0.0],
            &[1.0, 0.9, 0.8, 0.6, 0.4],
        ]);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv);
                g.unification_loss(y, t.clone(), 0.75, 1.0)
            })
        });
    }

    #[test]
    fn bce_and_softmax_gradients() {
        let mut s = ParamStore::new(18);
        let lin = Linear::new(&mut s, "l", 3, 4, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(5, 3, 13);
        let t = Tensor::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0],
        ]);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv);
                g.bce_with_logits_loss(y, t.clone())
            })
        });
    }

    #[test]
    fn token_ops_gradients() {
        let mut s = ParamStore::new(19);
        let lin = Linear::new(&mut s, "l", 3, 4, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(6, 3, 14); // batch 3, tokens 2
        let t = input(6, 4, 15);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let h = lin.forward(g, xv);
                let pooled = g.mean_pool_tokens(h, 2);
                let rep = g.repeat_tokens(pooled, 2);
                g.mse_loss(rep, t.clone())
            })
        });
    }

    #[test]
    fn cross_entropy_gradients() {
        let mut s = ParamStore::new(21);
        let lin = Linear::new(&mut s, "l", 3, 5, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 3, 17);
        let targets = [0usize, 2, 4, 1];
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv);
                g.cross_entropy_loss(y, &targets)
            })
        });
    }

    #[test]
    fn reshape_gradients() {
        let mut s = ParamStore::new(22);
        let lin = Linear::new(&mut s, "l", 3, 8, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(2, 3, 18);
        let t = input(4, 4, 19);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let y = lin.forward(g, xv); // [2, 8]
                let r = g.reshape(y, &[4, 4]);
                g.mse_loss(r, t.clone())
            })
        });
    }

    #[test]
    fn vae_style_composite_gradients() {
        // exercise exp / mul / scale / add_scalar / mean_all used by the
        // VAESA baseline's KL term
        let mut s = ParamStore::new(20);
        let lin_mu = Linear::new(&mut s, "mu", 3, 2, true);
        let lin_lv = Linear::new(&mut s, "lv", 3, 2, true);
        let params: Vec<_> = s.iter().map(|(id, _, _)| id).collect();
        let x = input(4, 3, 16);
        assert_gradients_close(&mut s, &params, EPS, TOL, |st| {
            loss_and_grads(st, |g| {
                let xv = g.constant(x.clone());
                let mu = lin_mu.forward(g, xv);
                let lv = lin_lv.forward(g, xv);
                // KL = -0.5 mean(1 + lv - mu² - e^lv)
                let mu2 = g.mul(mu, mu);
                let elv = g.exp(lv);
                let t1 = g.add_scalar(lv, 1.0);
                let t2 = g.sub(t1, mu2);
                let t3 = g.sub(t2, elv);
                let m = g.mean_all(t3);
                g.scale(m, -0.5)
            })
        });
    }
}
