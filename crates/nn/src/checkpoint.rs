//! Saving and restoring [`ParamStore`] contents.
//!
//! Checkpoints are JSON maps from parameter name to `{shape, data}`. The
//! format is deliberately boring: the models here are < 1 M parameters and
//! the experiment harness re-loads them for the figure/table binaries.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use ai2_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::params::ParamStore;

/// One serialised parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedParam {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

/// A serialisable snapshot of every parameter in a store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Parameters keyed by registration name.
    pub params: BTreeMap<String, SavedParam>,
}

/// Error loading or applying a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// The checkpoint is missing a parameter the store expects.
    MissingParam(String),
    /// Shape in the checkpoint differs from the registered parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape registered in the store.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
    /// The file was written by a newer format revision than this build
    /// understands. Rejected cleanly instead of misreading fields a
    /// future writer may have re-purposed.
    UnsupportedFormat {
        /// Format revision found in the file.
        found: u64,
        /// Newest revision this build can read.
        supported: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            CheckpointError::MissingParam(n) => write!(f, "checkpoint missing parameter {n:?}"),
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "checkpoint shape mismatch for {name:?}: expected {expected:?}, found {found:?}"
            ),
            CheckpointError::UnsupportedFormat { found, supported } => write!(
                f,
                "checkpoint format {found} is newer than this build supports (max {supported}); \
                 upgrade the reader instead of re-saving the file"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Parse(e)
    }
}

impl Checkpoint {
    /// Snapshots every parameter of `store`.
    pub fn from_store(store: &ParamStore) -> Checkpoint {
        let mut params = BTreeMap::new();
        for (_, name, value) in store.iter() {
            params.insert(
                name.to_owned(),
                SavedParam {
                    shape: value.shape().to_vec(),
                    data: value.as_slice().to_vec(),
                },
            );
        }
        Checkpoint { params }
    }

    /// Writes the checkpoint as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Reads a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Copies values into `store`, matching parameters by name.
    ///
    /// Every parameter registered in `store` must be present with the same
    /// shape; extra entries in the checkpoint are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::MissingParam`] or
    /// [`CheckpointError::ShapeMismatch`] accordingly.
    pub fn apply_to(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        let ids: Vec<_> = store
            .iter()
            .map(|(id, name, _)| (id, name.to_owned()))
            .collect();
        for (id, name) in ids {
            let saved = self
                .params
                .get(&name)
                .ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
            let current = store.get(id);
            if current.shape() != saved.shape.as_slice() {
                return Err(CheckpointError::ShapeMismatch {
                    name,
                    expected: current.shape().to_vec(),
                    found: saved.shape.clone(),
                });
            }
            *store.get_mut(id) = Tensor::from_vec(saved.data.clone(), &saved.shape)
                .expect("saved shape matches data by construction");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;

    #[test]
    fn roundtrip_through_memory() {
        let mut a = ParamStore::new(1);
        let _ = Linear::new(&mut a, "l", 3, 2, true);
        let ck = Checkpoint::from_store(&a);

        let mut b = ParamStore::new(999); // different init
        let _ = Linear::new(&mut b, "l", 3, 2, true);
        assert_ne!(a.get(a.find("l.w").unwrap()), b.get(b.find("l.w").unwrap()));

        ck.apply_to(&mut b).unwrap();
        assert_eq!(a.get(a.find("l.w").unwrap()), b.get(b.find("l.w").unwrap()));
        assert_eq!(a.get(a.find("l.b").unwrap()), b.get(b.find("l.b").unwrap()));
    }

    #[test]
    fn roundtrip_through_file() {
        let mut a = ParamStore::new(2);
        let _ = Linear::new(&mut a, "l", 2, 2, false);
        let dir = std::env::temp_dir().join("ai2_nn_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        Checkpoint::from_store(&a).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        let mut b = ParamStore::new(3);
        let _ = Linear::new(&mut b, "l", 2, 2, false);
        loaded.apply_to(&mut b).unwrap();
        assert_eq!(a.get(a.find("l.w").unwrap()), b.get(b.find("l.w").unwrap()));
        fs::remove_file(path).ok();
    }

    #[test]
    fn missing_param_is_reported() {
        let mut a = ParamStore::new(4);
        let _ = Linear::new(&mut a, "enc", 2, 2, false);
        let ck = Checkpoint::from_store(&a);
        let mut b = ParamStore::new(5);
        let _ = Linear::new(&mut b, "dec", 2, 2, false);
        let err = ck.apply_to(&mut b).unwrap_err();
        assert!(matches!(err, CheckpointError::MissingParam(_)));
        assert!(err.to_string().contains("dec.w"));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut a = ParamStore::new(6);
        let _ = Linear::new(&mut a, "l", 2, 2, false);
        let ck = Checkpoint::from_store(&a);
        let mut b = ParamStore::new(7);
        let _ = Linear::new(&mut b, "l", 2, 3, false);
        let err = ck.apply_to(&mut b).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
    }
}
