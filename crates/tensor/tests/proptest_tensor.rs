//! Property-based tests for tensor algebra invariants.

use ai2_tensor::{linalg, rng, stats, Tensor};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized"))
    })
}

proptest! {
    #[test]
    fn matmul_identity_is_noop(a in small_matrix(8)) {
        let i = Tensor::eye(a.cols());
        let prod = a.matmul(&i);
        prop_assert!(prod.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        (a, b, c) in (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| (
            proptest::collection::vec(-5.0f32..5.0, m * k)
                .prop_map(move |v| Tensor::from_vec(v, &[m, k]).expect("sized")),
            proptest::collection::vec(-5.0f32..5.0, k * n)
                .prop_map(move |v| Tensor::from_vec(v, &[k, n]).expect("sized")),
            proptest::collection::vec(-5.0f32..5.0, k * n)
                .prop_map(move |v| Tensor::from_vec(v, &[k, n]).expect("sized")),
        ))
    ) {
        // A(B + C) = AB + AC
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transpose_is_involution(a in small_matrix(10)) {
        prop_assert_eq!(a.transpose2d().transpose2d(), a);
    }

    #[test]
    fn matmul_transpose_rule(
        (a, b) in (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| (
            proptest::collection::vec(-5.0f32..5.0, m * k)
                .prop_map(move |v| Tensor::from_vec(v, &[m, k]).expect("sized")),
            proptest::collection::vec(-5.0f32..5.0, k * n)
                .prop_map(move |v| Tensor::from_vec(v, &[k, n]).expect("sized")),
        ))
    ) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_matrix(8)) {
        let s = a.softmax_rows();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn normalize_rows_unit_norm(a in small_matrix(8)) {
        let n = a.normalize_rows(1e-8);
        for i in 0..n.rows() {
            let norm: f32 = n.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            // either unit norm or an (almost) zero row left untouched
            prop_assert!((norm - 1.0).abs() < 1e-3 || norm < 1e-6);
        }
    }

    #[test]
    fn standardizer_inverse_roundtrips(a in small_matrix(8)) {
        prop_assume!(a.rows() >= 2);
        let s = stats::Standardizer::fit(&a);
        let z = s.transform(&a);
        for i in 0..a.rows() {
            let back = s.inverse_row(z.row(i));
            for (x, y) in back.iter().zip(a.row(i)) {
                prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn cholesky_solve_satisfies_system(seed in 0u64..1000, n in 2usize..8) {
        let mut r = rng::seeded(seed);
        let g = rng::rand_uniform(&mut r, &[n, n], -1.0, 1.0);
        let mut a = g.matmul_tn(&g);
        for i in 0..n {
            a[(i, i)] += n as f32;
        }
        let x_true = rng::rand_uniform(&mut r, &[n], -2.0, 2.0);
        let b = a.matvec(&x_true);
        let l = linalg::cholesky(&a).expect("SPD by construction");
        let x = linalg::cholesky_solve(&l, &b);
        let back = a.matvec(&x);
        prop_assert!(back.max_abs_diff(&b) < 1e-2 * (1.0 + b.norm()));
    }

    #[test]
    fn eigen_reconstructs_trace(seed in 0u64..1000, n in 2usize..7) {
        let mut r = rng::seeded(seed);
        let g = rng::rand_uniform(&mut r, &[n, n], -1.0, 1.0);
        let a = g.add(&g.transpose2d()).scale(0.5); // symmetric
        let (vals, _) = linalg::symmetric_eigen(&a);
        let trace: f32 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f32 = vals.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-2 * (1.0 + trace.abs()));
    }

    #[test]
    fn sum_axis_consistency(a in small_matrix(10)) {
        let total = a.sum();
        let by_rows = a.sum_axis1().sum();
        let by_cols = a.sum_axis0().sum();
        prop_assert!((total - by_rows).abs() < 1e-2 * (1.0 + total.abs()));
        prop_assert!((total - by_cols).abs() < 1e-2 * (1.0 + total.abs()));
    }
}
