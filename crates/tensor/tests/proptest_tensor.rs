//! Property-based tests for tensor algebra invariants.
//!
//! Written as seeded random sweeps over the in-tree RNG (the `proptest`
//! crate is unavailable offline): each test draws many random cases from
//! a fixed seed, so failures are reproducible and the properties cover
//! the same input distributions the original proptest strategies did.

use ai2_tensor::{linalg, rng, stats, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

const CASES: usize = 64;

fn small_matrix(r: &mut StdRng, max_dim: usize) -> Tensor {
    let rows = r.random_range(1..=max_dim);
    let cols = r.random_range(1..=max_dim);
    rng::rand_uniform(r, &[rows, cols], -10.0, 10.0)
}

fn sized_matrix(r: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    rng::rand_uniform(r, &[rows, cols], -5.0, 5.0)
}

#[test]
fn matmul_identity_is_noop() {
    let mut r = rng::seeded(0xA201);
    for _ in 0..CASES {
        let a = small_matrix(&mut r, 8);
        let i = Tensor::eye(a.cols());
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-4);
    }
}

#[test]
fn matmul_distributes_over_add() {
    let mut r = rng::seeded(0xA202);
    for _ in 0..CASES {
        let (m, k, n) = (
            r.random_range(1..6usize),
            r.random_range(1..6usize),
            r.random_range(1..6usize),
        );
        let a = sized_matrix(&mut r, m, k);
        let b = sized_matrix(&mut r, k, n);
        let c = sized_matrix(&mut r, k, n);
        // A(B + C) = AB + AC
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }
}

#[test]
fn transpose_is_involution() {
    let mut r = rng::seeded(0xA203);
    for _ in 0..CASES {
        let a = small_matrix(&mut r, 10);
        assert_eq!(a.transpose2d().transpose2d(), a);
    }
}

#[test]
fn matmul_transpose_rule() {
    let mut r = rng::seeded(0xA204);
    for _ in 0..CASES {
        let (m, k, n) = (
            r.random_range(1..6usize),
            r.random_range(1..6usize),
            r.random_range(1..6usize),
        );
        let a = sized_matrix(&mut r, m, k);
        let b = sized_matrix(&mut r, k, n);
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut r = rng::seeded(0xA205);
    for _ in 0..CASES {
        let a = small_matrix(&mut r, 8);
        let s = a.softmax_rows();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn normalize_rows_unit_norm() {
    let mut r = rng::seeded(0xA206);
    for _ in 0..CASES {
        let a = small_matrix(&mut r, 8);
        let n = a.normalize_rows(1e-8);
        for i in 0..n.rows() {
            let norm: f32 = n.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            // either unit norm or an (almost) zero row left untouched
            assert!((norm - 1.0).abs() < 1e-3 || norm < 1e-6);
        }
    }
}

#[test]
fn standardizer_inverse_roundtrips() {
    let mut r = rng::seeded(0xA207);
    for _ in 0..CASES {
        let rows = r.random_range(2..=8usize);
        let cols = r.random_range(1..=8usize);
        let a = rng::rand_uniform(&mut r, &[rows, cols], -10.0, 10.0);
        let s = stats::Standardizer::fit(&a);
        let z = s.transform(&a);
        for i in 0..a.rows() {
            let back = s.inverse_row(z.row(i));
            for (x, y) in back.iter().zip(a.row(i)) {
                assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
            }
        }
    }
}

#[test]
fn cholesky_solve_satisfies_system() {
    let mut r = rng::seeded(0xA208);
    for _ in 0..CASES {
        let n = r.random_range(2..8usize);
        let g = rng::rand_uniform(&mut r, &[n, n], -1.0, 1.0);
        let mut a = g.matmul_tn(&g);
        for i in 0..n {
            a[(i, i)] += n as f32;
        }
        let x_true = rng::rand_uniform(&mut r, &[n], -2.0, 2.0);
        let b = a.matvec(&x_true);
        let l = linalg::cholesky(&a).expect("SPD by construction");
        let x = linalg::cholesky_solve(&l, &b);
        let back = a.matvec(&x);
        assert!(back.max_abs_diff(&b) < 1e-2 * (1.0 + b.norm()));
    }
}

#[test]
fn eigen_reconstructs_trace() {
    let mut r = rng::seeded(0xA209);
    for _ in 0..CASES {
        let n = r.random_range(2..7usize);
        let g = rng::rand_uniform(&mut r, &[n, n], -1.0, 1.0);
        let a = g.add(&g.transpose2d()).scale(0.5); // symmetric
        let (vals, _) = linalg::symmetric_eigen(&a);
        let trace: f32 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f32 = vals.iter().sum();
        assert!((trace - sum).abs() < 1e-2 * (1.0 + trace.abs()));
    }
}

#[test]
fn sum_axis_consistency() {
    let mut r = rng::seeded(0xA20A);
    for _ in 0..CASES {
        let a = small_matrix(&mut r, 10);
        let total = a.sum();
        let by_rows = a.sum_axis1().sum();
        let by_cols = a.sum_axis0().sum();
        assert!((total - by_rows).abs() < 1e-2 * (1.0 + total.abs()));
        assert!((total - by_cols).abs() < 1e-2 * (1.0 + total.abs()));
    }
}
