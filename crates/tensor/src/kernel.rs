//! Runtime-dispatched CPU micro-kernels: the SIMD substrate under every
//! matrix product and element-wise activation in the workspace.
//!
//! One [`Kernel`] level is selected per process (see [`active`]): AVX2+FMA
//! where the host supports it, SSE2 on any other x86-64, and a portable
//! scalar path everywhere else. The scalar path is always compiled and can
//! be forced with `AI2_KERNEL=scalar` (likewise `sse2` / `avx2`), which is
//! how the CI `kernel-parity` job runs the whole tensor/nn test suite once
//! per level and how any host can reproduce the exact numbers of another.
//!
//! All GEMM entry points **accumulate** (`out += …`) over row-major slices,
//! so the same kernels serve the forward pass (into zeroed buffers) and the
//! backward pass (into existing gradient buffers).
//!
//! Numerical contract: for a fixed output element, every kernel level sums
//! over the contraction dimension in the same order, so SIMD results differ
//! from scalar only by FMA rounding (`gemm`/`gemm_tn`) or by lane-parallel
//! re-association (`gemm_nt`, `matvec`, reductions) — bounded well under
//! `1e-5` absolute for unit-scale data, and pinned by the seeded parity
//! property tests at the bottom of this file. `relu_to` / `leaky_relu_to`
//! are bit-exact across levels.

use std::sync::OnceLock;

/// Cache block edge for the scalar GEMM kernel, chosen so three `BLOCK²`
/// f32 tiles fit comfortably in a 32 KiB L1 cache.
const BLOCK: usize = 48;

/// One instruction-set level of the micro-kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar loops (cache-blocked); compiled everywhere.
    Scalar,
    /// 4-lane SSE2 — the x86-64 baseline, available on every x86-64.
    Sse2,
    /// 8-lane AVX2 with FMA.
    Avx2,
}

impl Kernel {
    /// Every level, in increasing width order.
    pub const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2];

    /// The wire/stats/env name of this level.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses an `AI2_KERNEL` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Whether this level can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The widest level the host supports.
pub fn best_available() -> Kernel {
    if Kernel::Avx2.is_available() {
        Kernel::Avx2
    } else if Kernel::Sse2.is_available() {
        Kernel::Sse2
    } else {
        Kernel::Scalar
    }
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// The process-wide kernel level, detected once: the `AI2_KERNEL`
/// environment override when set (and runnable on this host — an
/// unavailable or unknown spelling falls back with a warning), otherwise
/// [`best_available`].
pub fn active() -> Kernel {
    *ACTIVE.get_or_init(|| match std::env::var("AI2_KERNEL") {
        Ok(spec) => match Kernel::parse(&spec) {
            Some(k) if k.is_available() => k,
            Some(k) => {
                eprintln!(
                    "[ai2-tensor] AI2_KERNEL={} is not available on this host; using {}",
                    k.name(),
                    best_available().name()
                );
                best_available()
            }
            None => {
                eprintln!(
                    "[ai2-tensor] unknown AI2_KERNEL {spec:?} (expected scalar|sse2|avx2); \
                     using {}",
                    best_available().name()
                );
                best_available()
            }
        },
        Err(_) => best_available(),
    })
}

// ---------------------------------------------------------------------------
// GEMM: out += a × b (all row-major, accumulating)
// ---------------------------------------------------------------------------

/// `out += a × b` with `a: [m,k]`, `b: [k,n]`, `out: [m,n]`.
pub fn gemm(kn: Kernel, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(kn.is_available());
    let mut sp = ai2_obs::local_span("tensor.gemm", "kernel");
    if sp.is_recording() {
        sp.arg("m", m);
        sp.arg("k", k);
        sp.arg("n", n);
    }
    // a(i, kk) = a[i*k + kk*1]
    dispatch_gemm(kn, a, b, out, m, k, n, k, 1);
}

/// `out += aᵀ × b` with `a: [k,m]`, `b: [k,n]`, `out: [m,n]` — the
/// transpose is never formed.
pub fn gemm_tn(kn: Kernel, a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(kn.is_available());
    let mut sp = ai2_obs::local_span("tensor.gemm_tn", "kernel");
    if sp.is_recording() {
        sp.arg("m", m);
        sp.arg("k", k);
        sp.arg("n", n);
    }
    // aᵀ(i, kk) = a[kk*m + i]
    dispatch_gemm(kn, a, b, out, m, k, n, 1, m);
}

/// The broadcast-A kernels, generic over A's element stride:
/// `A(i, kk) = a[i*ra + kk*ca]`.
#[allow(clippy::too_many_arguments)]
fn dispatch_gemm(
    kn: Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ra: usize,
    ca: usize,
) {
    match kn {
        Kernel::Scalar => gemm_scalar(a, b, out, m, k, n, ra, ca),
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => gemm_sse2(a, b, out, m, k, n, ra, ca),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Kernel::Avx2 is only handed out when avx2+fma are
        // detected (see `Kernel::is_available` / `active`).
        Kernel::Avx2 => unsafe { gemm_avx2(a, b, out, m, k, n, ra, ca) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => gemm_scalar(a, b, out, m, k, n, ra, ca),
    }
}

/// `out += a × bᵀ` with `a: [m,k]`, `b: [n,k]`, `out: [m,n]` — every
/// output element is a dot product of two contiguous rows.
pub fn gemm_nt(kn: Kernel, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(kn.is_available());
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o += dot(kn, arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `out[i] += a_row_i · v` with `a: [m,k]`, `v: [k]`, `out: [m]`.
pub fn matvec(kn: Kernel, a: &[f32], v: &[f32], out: &mut [f32], m: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(v.len(), k);
    debug_assert_eq!(out.len(), m);
    for (i, o) in out.iter_mut().enumerate() {
        *o += dot(kn, &a[i * k..(i + 1) * k], v);
    }
}

/// Dot product of two equal-length slices.
pub fn dot(kn: Kernel, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match kn {
        Kernel::Scalar => dot_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => dot_sse2(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dot_scalar(a, b),
    }
}

/// Dot product of two equal-length `i8` slices with `i32` accumulation —
/// the inner loop of the int8 quantized decoder.
pub fn dot_i8(kn: Kernel, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match kn {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { dot_i8_avx2(a, b) },
        _ => dot_i8_scalar(a, b),
    }
}

// ---------------------------------------------------------------------------
// Element-wise activations and row reductions
// ---------------------------------------------------------------------------

/// `out[i] = max(x[i], 0)` — bit-exact across kernel levels.
pub fn relu_to(kn: Kernel, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match kn {
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => relu_sse2(x, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { relu_avx2(x, out) },
        _ => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v.max(0.0);
            }
        }
    }
}

/// `out[i] = x[i] >= 0 ? x[i] : slope·x[i]` — bit-exact across levels
/// (the SIMD form `max(x,0) + slope·min(x,0)` produces the same bits for
/// every finite input).
pub fn leaky_relu_to(kn: Kernel, x: &[f32], slope: f32, out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match kn {
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => leaky_relu_sse2(x, slope, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { leaky_relu_avx2(x, slope, out) },
        _ => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = if v >= 0.0 { v } else { slope * v };
            }
        }
    }
}

/// GELU (tanh approximation), matching the scalar formula
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))` to ≤ 1e-5 absolute.
pub fn gelu_to(kn: Kernel, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    match kn {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { gelu_avx2(x, out) },
        _ => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = gelu_scalar(v);
            }
        }
    }
}

/// The scalar GELU forward (tanh approximation) every level approximates.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // √(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Sum of a slice (lane-parallel on SIMD levels).
pub fn sum(kn: Kernel, x: &[f32]) -> f32 {
    match kn {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { sum_avx2(x) },
        _ => x.iter().sum(),
    }
}

/// Sum of squared deviations from `mean` — the layernorm variance
/// numerator.
pub fn sq_dev_sum(kn: Kernel, x: &[f32], mean: f32) -> f32 {
    match kn {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { sq_dev_sum_avx2(x, mean) },
        _ => x.iter().map(|v| (v - mean) * (v - mean)).sum(),
    }
}

/// One layernorm row: `out[j] = (x[j] − mean)·inv_std·gamma[j] + beta[j]`.
pub fn layernorm_row(
    kn: Kernel,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    mean: f32,
    inv_std: f32,
    out: &mut [f32],
) {
    debug_assert!(x.len() == gamma.len() && x.len() == beta.len() && x.len() == out.len());
    match kn {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 implies detected avx2+fma.
        Kernel::Avx2 => unsafe { layernorm_row_avx2(x, gamma, beta, mean, inv_std, out) },
        _ => {
            for ((o, &v), (&g, &bt)) in out.iter_mut().zip(x).zip(gamma.iter().zip(beta)) {
                *o = (v - mean) * inv_std * g + bt;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn gemm_scalar(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ra: usize,
    ca: usize,
) {
    for i0 in (0..m).step_by(BLOCK) {
        let imax = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let kmax = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let jmax = (j0 + BLOCK).min(n);
                for i in i0..imax {
                    let orow = &mut out[i * n + j0..i * n + jmax];
                    for kk in k0..kmax {
                        let av = a[i * ra + kk * ca];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + jmax];
                        for (ov, &bv) in orow.iter_mut().zip(brow) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        }
    }
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

// ---------------------------------------------------------------------------
// SSE2 kernels (baseline x86-64: the intrinsics are statically available)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::*;

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_sse2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        ra: usize,
        ca: usize,
    ) {
        // SAFETY: SSE2 is part of the x86-64 baseline; all pointer
        // arithmetic stays within the slice bounds established by the
        // callers' debug asserts and the loop limits below.
        unsafe {
            let bp = b.as_ptr();
            let op = out.as_mut_ptr();
            let mut j = 0;
            while j + 8 <= n {
                for i in 0..m {
                    let mut acc0 = _mm_setzero_ps();
                    let mut acc1 = _mm_setzero_ps();
                    for kk in 0..k {
                        let av = _mm_set1_ps(*a.get_unchecked(i * ra + kk * ca));
                        let b0 = _mm_loadu_ps(bp.add(kk * n + j));
                        let b1 = _mm_loadu_ps(bp.add(kk * n + j + 4));
                        acc0 = _mm_add_ps(acc0, _mm_mul_ps(av, b0));
                        acc1 = _mm_add_ps(acc1, _mm_mul_ps(av, b1));
                    }
                    let p = op.add(i * n + j);
                    _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), acc0));
                    _mm_storeu_ps(p.add(4), _mm_add_ps(_mm_loadu_ps(p.add(4)), acc1));
                }
                j += 8;
            }
            if j < n {
                for i in 0..m {
                    for kk in 0..k {
                        let av = *a.get_unchecked(i * ra + kk * ca);
                        if av == 0.0 {
                            continue;
                        }
                        for jj in j..n {
                            *op.add(i * n + jj) += av * *bp.add(kk * n + jj);
                        }
                    }
                }
            }
        }
    }

    pub(super) fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len();
        // SAFETY: SSE2 baseline; bounds respected by the chunked loop.
        unsafe {
            let (ap, bp) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm_setzero_ps();
            let mut acc1 = _mm_setzero_ps();
            let mut kk = 0;
            while kk + 8 <= k {
                acc0 = _mm_add_ps(
                    acc0,
                    _mm_mul_ps(_mm_loadu_ps(ap.add(kk)), _mm_loadu_ps(bp.add(kk))),
                );
                acc1 = _mm_add_ps(
                    acc1,
                    _mm_mul_ps(_mm_loadu_ps(ap.add(kk + 4)), _mm_loadu_ps(bp.add(kk + 4))),
                );
                kk += 8;
            }
            let mut acc = _mm_add_ps(acc0, acc1);
            // horizontal sum
            acc = _mm_add_ps(acc, _mm_movehl_ps(acc, acc));
            acc = _mm_add_ss(acc, _mm_shuffle_ps(acc, acc, 1));
            let mut total = _mm_cvtss_f32(acc);
            while kk < k {
                total += *ap.add(kk) * *bp.add(kk);
                kk += 1;
            }
            total
        }
    }

    pub(super) fn relu_sse2(x: &[f32], out: &mut [f32]) {
        // SAFETY: SSE2 baseline; bounds respected by the chunked loop.
        unsafe {
            let zero = _mm_setzero_ps();
            let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
            let mut i = 0;
            while i + 4 <= x.len() {
                _mm_storeu_ps(op.add(i), _mm_max_ps(_mm_loadu_ps(xp.add(i)), zero));
                i += 4;
            }
            while i < x.len() {
                *op.add(i) = (*xp.add(i)).max(0.0);
                i += 1;
            }
        }
    }

    pub(super) fn leaky_relu_sse2(x: &[f32], slope: f32, out: &mut [f32]) {
        // SAFETY: SSE2 baseline; bounds respected by the chunked loop.
        unsafe {
            let zero = _mm_setzero_ps();
            let sl = _mm_set1_ps(slope);
            let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
            let mut i = 0;
            while i + 4 <= x.len() {
                let v = _mm_loadu_ps(xp.add(i));
                let pos = _mm_max_ps(v, zero);
                let neg = _mm_mul_ps(sl, _mm_min_ps(v, zero));
                _mm_storeu_ps(op.add(i), _mm_add_ps(pos, neg));
                i += 4;
            }
            while i < x.len() {
                let v = *xp.add(i);
                *op.add(i) = if v >= 0.0 { v } else { slope * v };
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use sse2::{dot_sse2, gemm_sse2, leaky_relu_sse2, relu_sse2};

// ---------------------------------------------------------------------------
// AVX2+FMA kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// 4-row × 16-column register-tiled GEMM strip with A broadcast:
    /// `A(i, kk) = a[i*ra + kk*ca]`. Accumulation over `kk` happens in the
    /// same order as the scalar kernel for every output element.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; slice dims must satisfy the caller contracts of
    /// [`super::gemm`] / [`super::gemm_tn`].
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn gemm_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        ra: usize,
        ca: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut i = 0;
            while i + 4 <= m {
                let mut acc = [[_mm256_setzero_ps(); 2]; 4];
                for kk in 0..k {
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j));
                    let b1 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add((i + r) * ra + kk * ca));
                        acc_r[0] = _mm256_fmadd_ps(av, b0, acc_r[0]);
                        acc_r[1] = _mm256_fmadd_ps(av, b1, acc_r[1]);
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let p = op.add((i + r) * n + j);
                    _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc_r[0]));
                    _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), acc_r[1]));
                }
                i += 4;
            }
            while i < m {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                for kk in 0..k {
                    let av = _mm256_set1_ps(*ap.add(i * ra + kk * ca));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(kk * n + j)), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(kk * n + j + 8)), acc1);
                }
                let p = op.add(i * n + j);
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc0));
                _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), acc1));
                i += 1;
            }
            j += 16;
        }
        while j + 8 <= n {
            for i in 0..m {
                let mut acc = _mm256_setzero_ps();
                for kk in 0..k {
                    let av = _mm256_set1_ps(*ap.add(i * ra + kk * ca));
                    acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(kk * n + j)), acc);
                }
                let p = op.add(i * n + j);
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), acc));
            }
            j += 8;
        }
        if j < n {
            for i in 0..m {
                for kk in 0..k {
                    let av = *ap.add(i * ra + kk * ca);
                    if av == 0.0 {
                        continue;
                    }
                    for jj in j..n {
                        *op.add(i * n + jj) += av * *bp.add(kk * n + jj);
                    }
                }
            }
        }
    }

    /// # Safety
    ///
    /// Requires avx2+fma; `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut kk = 0;
        while kk + 16 <= k {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(kk)),
                _mm256_loadu_ps(bp.add(kk)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(kk + 8)),
                _mm256_loadu_ps(bp.add(kk + 8)),
                acc1,
            );
            kk += 16;
        }
        while kk + 8 <= k {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(kk)),
                _mm256_loadu_ps(bp.add(kk)),
                acc0,
            );
            kk += 8;
        }
        let mut total = hsum256(_mm256_add_ps(acc0, acc1));
        while kk < k {
            total += *ap.add(kk) * *bp.add(kk);
            kk += 1;
        }
        total
    }

    /// # Safety
    ///
    /// Requires avx2; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let k = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut kk = 0;
        while kk + 16 <= k {
            let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(kk).cast()));
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(kk).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            kk += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        let mut total = _mm_cvtsi128_si32(s);
        while kk < k {
            total += i32::from(*ap.add(kk)) * i32::from(*bp.add(kk));
            kk += 1;
        }
        total
    }

    /// # Safety
    ///
    /// Requires avx2; `x.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_avx2(x: &[f32], out: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= x.len() {
            _mm256_storeu_ps(op.add(i), _mm256_max_ps(_mm256_loadu_ps(xp.add(i)), zero));
            i += 8;
        }
        while i < x.len() {
            *op.add(i) = (*xp.add(i)).max(0.0);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires avx2; `x.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn leaky_relu_avx2(x: &[f32], slope: f32, out: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let sl = _mm256_set1_ps(slope);
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= x.len() {
            let v = _mm256_loadu_ps(xp.add(i));
            let pos = _mm256_max_ps(v, zero);
            let neg = _mm256_mul_ps(sl, _mm256_min_ps(v, zero));
            _mm256_storeu_ps(op.add(i), _mm256_add_ps(pos, neg));
            i += 8;
        }
        while i < x.len() {
            let v = *xp.add(i);
            *op.add(i) = if v >= 0.0 { v } else { slope * v };
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires avx2+fma; `x.len() == out.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gelu_avx2(x: &[f32], out: &mut [f32]) {
        const C: f32 = 0.797_884_6; // √(2/π)
        let c = _mm256_set1_ps(C);
        let c3 = _mm256_set1_ps(0.044715);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= x.len() {
            let v = _mm256_loadu_ps(xp.add(i));
            // u = C·(x + 0.044715·x³)
            let v2 = _mm256_mul_ps(v, v);
            let inner = _mm256_fmadd_ps(_mm256_mul_ps(c3, v2), v, v);
            let u = _mm256_mul_ps(c, inner);
            let t = tanh256(u);
            let y = _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t));
            _mm256_storeu_ps(op.add(i), y);
            i += 8;
        }
        while i < x.len() {
            *op.add(i) = super::gelu_scalar(*xp.add(i));
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires avx2+fma.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn sum_avx2(x: &[f32]) -> f32 {
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= x.len() {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(xp.add(i)));
            i += 8;
        }
        let mut total = hsum256(acc);
        while i < x.len() {
            total += *xp.add(i);
            i += 1;
        }
        total
    }

    /// # Safety
    ///
    /// Requires avx2+fma.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn sq_dev_sum_avx2(x: &[f32], mean: f32) -> f32 {
        let mu = _mm256_set1_ps(mean);
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= x.len() {
            let d = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mu);
            acc = _mm256_fmadd_ps(d, d, acc);
            i += 8;
        }
        let mut total = hsum256(acc);
        while i < x.len() {
            let d = *xp.add(i) - mean;
            total += d * d;
            i += 1;
        }
        total
    }

    /// # Safety
    ///
    /// Requires avx2+fma; all slices equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn layernorm_row_avx2(
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        mean: f32,
        inv_std: f32,
        out: &mut [f32],
    ) {
        let mu = _mm256_set1_ps(mean);
        let is = _mm256_set1_ps(inv_std);
        let (xp, gp, btp, op) = (x.as_ptr(), gamma.as_ptr(), beta.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= x.len() {
            let xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mu), is);
            let y = _mm256_fmadd_ps(xh, _mm256_loadu_ps(gp.add(i)), _mm256_loadu_ps(btp.add(i)));
            _mm256_storeu_ps(op.add(i), y);
            i += 8;
        }
        while i < x.len() {
            *op.add(i) = (*xp.add(i) - mean) * inv_std * *gp.add(i) + *btp.add(i);
            i += 1;
        }
    }

    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let mut s = _mm_add_ps(lo, hi);
        s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Vector tanh via the exponential identity
    /// `tanh(u) = 1 − 2/(e^{2u} + 1)`, with a Cephes-style `expf`.
    #[inline]
    unsafe fn tanh256(u: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let e = exp256(_mm256_mul_ps(two, u));
        _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one)))
    }

    /// Cephes-style vectorized `expf`: range-reduced degree-5 polynomial,
    /// ~1 ulp over the clamped domain.
    #[inline]
    unsafe fn exp256(x: __m256) -> __m256 {
        let hi = _mm256_set1_ps(88.376_26);
        let lo = _mm256_set1_ps(-87.336_54);
        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let ln2_hi = _mm256_set1_ps(0.693_359_4);
        let ln2_lo = _mm256_set1_ps(-2.121_944_4e-4);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);

        let x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
        // n = round(x / ln 2)
        let n = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, half));
        // r = x − n·ln2 (split constant for accuracy)
        let r = _mm256_fnmadd_ps(n, ln2_hi, x);
        let r = _mm256_fnmadd_ps(n, ln2_lo, r);
        // polynomial e^r ≈ 1 + r + r²·P(r)
        let c0 = _mm256_set1_ps(1.987_569_1e-4);
        let c1 = _mm256_set1_ps(1.398_199_9e-3);
        let c2 = _mm256_set1_ps(8.333_452e-3);
        let c3 = _mm256_set1_ps(4.166_579_6e-2);
        let c4 = _mm256_set1_ps(1.666_666_6e-1);
        let c5 = _mm256_set1_ps(0.5);
        let mut p = c0;
        p = _mm256_fmadd_ps(p, r, c1);
        p = _mm256_fmadd_ps(p, r, c2);
        p = _mm256_fmadd_ps(p, r, c3);
        p = _mm256_fmadd_ps(p, r, c4);
        p = _mm256_fmadd_ps(p, r, c5);
        let r2 = _mm256_mul_ps(r, r);
        let e = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), one);
        // scale by 2^n
        let n_i = _mm256_cvtps_epi32(n);
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(n_i, _mm256_set1_epi32(127)),
            23,
        ));
        _mm256_mul_ps(e, pow2)
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    dot_avx2, dot_i8_avx2, gelu_avx2, gemm_avx2, layernorm_row_avx2, leaky_relu_avx2, relu_avx2,
    sq_dev_sum_avx2, sum_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use crate::Tensor;

    /// Every level the host can actually run (scalar always; the property
    /// tests exercise whatever SIMD the machine has).
    fn runnable() -> Vec<Kernel> {
        Kernel::ALL
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    fn rand_vec(r: &mut rand::rngs::StdRng, len: usize) -> Vec<f32> {
        rng::rand_uniform(r, &[len.max(1)], -1.0, 1.0).into_vec()
    }

    #[test]
    fn names_parse_back() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("AVX2"), Some(Kernel::Avx2));
        assert_eq!(Kernel::parse("neon"), None);
    }

    #[test]
    fn active_is_available() {
        assert!(active().is_available());
        assert!(best_available().is_available());
    }

    /// Seeded property test: every runnable level agrees with the scalar
    /// reference on ragged shapes from 1×1×1 up past 300 on every axis
    /// (never a multiple of the vector width only).
    #[test]
    fn gemm_parity_across_kernels_on_ragged_shapes() {
        let mut r = rng::seeded(0x51AD);
        let shapes = [
            (1, 1, 1),
            (1, 7, 1),
            (3, 5, 2),
            (4, 16, 8),
            (5, 9, 17),
            (13, 31, 29),
            (48, 48, 48),
            (63, 129, 65),
            (97, 51, 203),
            (300, 300, 300),
        ];
        for &(m, k, n) in &shapes {
            let a = rand_vec(&mut r, m * k);
            let b = rand_vec(&mut r, k * n);
            let mut reference = vec![0.0f32; m * n];
            gemm(Kernel::Scalar, &a, &b, &mut reference, m, k, n);
            for kn in runnable() {
                let mut got = vec![0.0f32; m * n];
                gemm(kn, &a, &b, &mut got, m, k, n);
                let max_diff = got
                    .iter()
                    .zip(&reference)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(
                    max_diff <= 1e-5 * (k as f32).max(1.0).sqrt(),
                    "{} gemm diverged on {m}×{k}×{n}: {max_diff}",
                    kn.name()
                );
            }
        }
    }

    #[test]
    fn gemm_tn_and_nt_parity_across_kernels() {
        let mut r = rng::seeded(0x51AE);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (17, 33, 9),
            (66, 130, 54),
            (127, 63, 255),
        ] {
            let a_tn = rand_vec(&mut r, k * m); // [k, m]
            let a_nt = rand_vec(&mut r, m * k); // [m, k]
            let b = rand_vec(&mut r, k * n); // [k, n]
            let b_nt = rand_vec(&mut r, n * k); // [n, k]
            let mut ref_tn = vec![0.0f32; m * n];
            let mut ref_nt = vec![0.0f32; m * n];
            gemm_tn(Kernel::Scalar, &a_tn, &b, &mut ref_tn, k, m, n);
            gemm_nt(Kernel::Scalar, &a_nt, &b_nt, &mut ref_nt, m, k, n);
            for kn in runnable() {
                let mut tn = vec![0.0f32; m * n];
                let mut nt = vec![0.0f32; m * n];
                gemm_tn(kn, &a_tn, &b, &mut tn, k, m, n);
                gemm_nt(kn, &a_nt, &b_nt, &mut nt, m, k, n);
                let tol = 1e-5 * (k as f32).max(1.0).sqrt();
                for (got, reference, what) in [(&tn, &ref_tn, "tn"), (&nt, &ref_nt, "nt")] {
                    let max_diff = got
                        .iter()
                        .zip(reference.iter())
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f32, f32::max);
                    assert!(
                        max_diff <= tol,
                        "{} gemm_{what} diverged on {m}×{k}×{n}: {max_diff}",
                        kn.name()
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_and_dot_parity() {
        let mut r = rng::seeded(0x51AF);
        for &(m, k) in &[(1, 1), (5, 3), (33, 65), (120, 257)] {
            let a = rand_vec(&mut r, m * k);
            let v = rand_vec(&mut r, k);
            let mut reference = vec![0.0f32; m];
            matvec(Kernel::Scalar, &a, &v, &mut reference, m, k);
            for kn in runnable() {
                let mut got = vec![0.0f32; m];
                matvec(kn, &a, &v, &mut got, m, k);
                for (x, y) in got.iter().zip(&reference) {
                    assert!((x - y).abs() <= 1e-5, "{} matvec {m}×{k}", kn.name());
                }
                let d = dot(kn, &a[..k], &v);
                assert!((d - dot(Kernel::Scalar, &a[..k], &v)).abs() <= 1e-5);
            }
        }
    }

    #[test]
    fn relu_and_leaky_relu_are_bit_exact_across_kernels() {
        let mut r = rng::seeded(0x51B0);
        for len in [1usize, 7, 8, 31, 300] {
            let x = rand_vec(&mut r, len);
            let mut reference = vec![0.0f32; len];
            relu_to(Kernel::Scalar, &x, &mut reference);
            let mut ref_leaky = vec![0.0f32; len];
            leaky_relu_to(Kernel::Scalar, &x, 0.2, &mut ref_leaky);
            for kn in runnable() {
                let mut got = vec![0.0f32; len];
                relu_to(kn, &x, &mut got);
                assert_eq!(got, reference, "{} relu len={len}", kn.name());
                let mut leaky = vec![0.0f32; len];
                leaky_relu_to(kn, &x, 0.2, &mut leaky);
                for (a, b) in leaky.iter().zip(&ref_leaky) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} leaky len={len}", kn.name());
                }
            }
        }
    }

    #[test]
    fn gelu_parity_within_tolerance() {
        let mut r = rng::seeded(0x51B1);
        // cover the saturated tails as well as the active region
        let mut x = rand_vec(&mut r, 301);
        for (i, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + (i % 13) as f32;
        }
        x.extend_from_slice(&[-30.0, -8.0, 0.0, 8.0, 30.0]);
        let mut reference = vec![0.0f32; x.len()];
        gelu_to(Kernel::Scalar, &x, &mut reference);
        for kn in runnable() {
            let mut got = vec![0.0f32; x.len()];
            gelu_to(kn, &x, &mut got);
            for ((&g, &e), &v) in got.iter().zip(&reference).zip(&x) {
                assert!(
                    (g - e).abs() <= 1e-5,
                    "{} gelu({v}) = {g}, scalar {e}",
                    kn.name()
                );
            }
        }
    }

    #[test]
    fn reductions_and_layernorm_parity() {
        let mut r = rng::seeded(0x51B2);
        for len in [1usize, 5, 16, 33, 300] {
            let x = rand_vec(&mut r, len);
            let gamma = rand_vec(&mut r, len);
            let beta = rand_vec(&mut r, len);
            let mu = sum(Kernel::Scalar, &x) / len as f32;
            let var = sq_dev_sum(Kernel::Scalar, &x, mu) / len as f32;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            let mut reference = vec![0.0f32; len];
            layernorm_row(
                Kernel::Scalar,
                &x,
                &gamma,
                &beta,
                mu,
                inv_std,
                &mut reference,
            );
            for kn in runnable() {
                assert!((sum(kn, &x) - mu * len as f32).abs() <= 1e-4);
                assert!((sq_dev_sum(kn, &x, mu) - var * len as f32).abs() <= 1e-4);
                let mut got = vec![0.0f32; len];
                layernorm_row(kn, &x, &gamma, &beta, mu, inv_std, &mut got);
                for (a, b) in got.iter().zip(&reference) {
                    assert!((a - b).abs() <= 1e-5, "{} layernorm len={len}", kn.name());
                }
            }
        }
    }

    #[test]
    fn dot_i8_matches_scalar_reference() {
        let mut r = rng::seeded(0x51B3);
        for len in [1usize, 15, 16, 17, 64, 301] {
            let a: Vec<i8> = rand_vec(&mut r, len)
                .into_iter()
                .map(|v| (v * 127.0) as i8)
                .collect();
            let b: Vec<i8> = rand_vec(&mut r, len)
                .into_iter()
                .map(|v| (v * 127.0) as i8)
                .collect();
            let reference: i32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum();
            for kn in runnable() {
                assert_eq!(dot_i8(kn, &a, &b), reference, "{} len={len}", kn.name());
            }
        }
    }

    #[test]
    fn accumulation_adds_onto_existing_output() {
        let a = Tensor::eye(3);
        for kn in runnable() {
            let mut out = vec![1.0f32; 9];
            gemm(kn, a.as_slice(), a.as_slice(), &mut out, 3, 3, 3);
            // out = 1 + I
            assert_eq!(out[0], 2.0);
            assert_eq!(out[1], 1.0);
            assert_eq!(out[4], 2.0, "{}", kn.name());
        }
    }
}
