//! Small dense linear algebra: Cholesky factorisation, triangular solves,
//! symmetric eigendecomposition (Jacobi) and PCA.
//!
//! These routines back the Gaussian-process surrogate of the Bayesian
//! optimization searcher (`ai2-dse::bo`) and the landscape visualisations
//! of Figs. 3–5 of the paper. Matrices here are at most a few hundred rows,
//! so `O(n³)` dense algorithms are entirely adequate.

use std::error::Error;
use std::fmt;

use crate::Tensor;

/// Error returned when a matrix is not suitable for a factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The input matrix was not square.
    NotSquare {
        /// Observed shape.
        shape: Vec<usize>,
    },
    /// A non-positive pivot was encountered; the matrix is not positive
    /// definite (within tolerance).
    NotPositiveDefinite {
        /// Pivot index at which factorisation failed.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { shape } => write!(f, "matrix {shape:?} is not square"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl Error for LinalgError {}

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite
/// matrix, returning the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
/// positive.
///
/// # Example
///
/// ```
/// use ai2_tensor::{linalg, Tensor};
///
/// let a = Tensor::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = linalg::cholesky(&a)?;
/// let back = l.matmul(&l.transpose2d());
/// assert!(back.max_abs_diff(&a) < 1e-5);
/// # Ok::<(), linalg::LinalgError>(())
/// ```
pub fn cholesky(a: &Tensor) -> Result<Tensor, LinalgError> {
    if a.rank() != 2 || a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            shape: a.shape().to_vec(),
        });
    }
    let n = a.rows();
    let mut l = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (`A = L Lᵀ`).
///
/// # Panics
///
/// Panics if the dimensions of `l` and `b` are inconsistent.
pub fn cholesky_solve(l: &Tensor, b: &Tensor) -> Tensor {
    let n = l.rows();
    assert_eq!(b.len(), n, "cholesky_solve: rhs length {} != {n}", b.len());
    // forward solve L y = b
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = b.at(i);
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // back solve Lᵀ x = y
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Tensor::from_slice(&x)
}

/// Log-determinant of `A` from its Cholesky factor `L`:
/// `log|A| = 2 Σ log L_ii`.
pub fn cholesky_logdet(l: &Tensor) -> f32 {
    let n = l.rows();
    (0..n).map(|i| l[(i, i)].ln()).sum::<f32>() * 2.0
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// descending order; column `j` of the eigenvector matrix corresponds to
/// eigenvalue `j`.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &Tensor) -> (Vec<f32>, Tensor) {
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen: matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Tensor::eye(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0f32;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f32> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));
    let values: Vec<f32> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Tensor::zeros(&[n, n]);
    for (newj, &oldj) in idx.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newj)] = v[(i, oldj)];
        }
    }
    (values, vectors)
}

/// Principal component analysis fitted on the rows of a data matrix.
///
/// Used to reproduce the paper's Fig. 3(a) and Fig. 4 input-feature
/// projections.
///
/// # Example
///
/// ```
/// use ai2_tensor::{linalg::Pca, Tensor};
///
/// // points on the line y = 2x: first component dominates
/// let data = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0], &[-1.0, -2.0]]);
/// let pca = Pca::fit(&data, 2);
/// assert!(pca.explained_variance()[0] > 100.0 * pca.explained_variance()[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Tensor,
    components: Tensor, // [n_features, n_components]
    explained: Vec<f32>,
}

impl Pca {
    /// Fits a PCA with `n_components` on the rows of `data` (`[n, d]`).
    ///
    /// # Panics
    ///
    /// Panics if `data` has fewer than 2 rows or `n_components > d`.
    pub fn fit(data: &Tensor, n_components: usize) -> Pca {
        let (n, d) = (data.rows(), data.cols());
        assert!(n >= 2, "Pca::fit: need at least 2 samples, got {n}");
        assert!(
            n_components <= d,
            "Pca::fit: {n_components} components > {d} features"
        );
        let mean = data.mean_axis0();
        // covariance = centeredᵀ centered / (n - 1)
        let mut centered = data.clone();
        for i in 0..n {
            for (x, &mu) in centered.row_mut(i).iter_mut().zip(mean.as_slice()) {
                *x -= mu;
            }
        }
        let cov = centered.matmul_tn(&centered).scale(1.0 / (n as f32 - 1.0));
        let (values, vectors) = symmetric_eigen(&cov);
        let mut components = Tensor::zeros(&[d, n_components]);
        for j in 0..n_components {
            for i in 0..d {
                components[(i, j)] = vectors[(i, j)];
            }
        }
        Pca {
            mean,
            components,
            explained: values[..n_components].to_vec(),
        }
    }

    /// Projects rows of `data` onto the fitted components, `[n, k]`.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted data.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        let (n, d) = (data.rows(), data.cols());
        assert_eq!(
            d,
            self.mean.len(),
            "Pca::transform: feature count {d} != fitted {}",
            self.mean.len()
        );
        let mut centered = data.clone();
        for i in 0..n {
            for (x, &mu) in centered.row_mut(i).iter_mut().zip(self.mean.as_slice()) {
                *x -= mu;
            }
        }
        centered.matmul(&self.components)
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// The fitted component matrix `[n_features, n_components]`.
    pub fn components(&self) -> &Tensor {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn spd(n: usize, seed: u64) -> Tensor {
        let mut r = rng::seeded(seed);
        let a = rng::rand_uniform(&mut r, &[n, n], -1.0, 1.0);
        // AᵀA + n·I is SPD
        let mut s = a.matmul_tn(&a);
        for i in 0..n {
            s[(i, i)] += n as f32;
        }
        s
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd(8, 5);
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose2d());
        assert!(back.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let e = cholesky(&Tensor::zeros(&[2, 3])).unwrap_err();
        assert!(matches!(e, LinalgError::NotSquare { .. }));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let e = cholesky(&a).unwrap_err();
        assert_eq!(e, LinalgError::NotPositiveDefinite { pivot: 1 });
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd(6, 9);
        let mut r = rng::seeded(10);
        let x_true = rng::rand_uniform(&mut r, &[6], -2.0, 2.0);
        let b = a.matvec(&x_true);
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve(&l, &b);
        assert!(x.max_abs_diff(&x_true) < 1e-2);
    }

    #[test]
    fn logdet_matches_diagonal_case() {
        let a = Tensor::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let l = cholesky(&a).unwrap();
        let ld = cholesky_logdet(&l);
        assert!((ld - (36.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn jacobi_diagonalises() {
        let a = spd(5, 3);
        let (vals, vecs) = symmetric_eigen(&a);
        // A v_j = λ_j v_j
        for j in 0..5 {
            let mut v = Vec::new();
            for i in 0..5 {
                v.push(vecs[(i, j)]);
            }
            let v = Tensor::from_slice(&v);
            let av = a.matvec(&v);
            let lv = v.scale(vals[j]);
            assert!(av.max_abs_diff(&lv) < 1e-2, "eigenpair {j}");
        }
        // descending order
        for j in 1..5 {
            assert!(vals[j - 1] >= vals[j] - 1e-5);
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        let mut r = rng::seeded(21);
        // data stretched along (1, 1)/√2
        let mut rows = Vec::new();
        for _ in 0..200 {
            let t: f32 = r.sample_range();
            let noise = rng::box_muller(&mut r).0 * 0.01;
            rows.push(Tensor::from_slice(&[t + noise, t - noise]));
        }
        let data = Tensor::stack_rows(&rows);
        let pca = Pca::fit(&data, 1);
        let c = pca.components();
        let ratio = (c[(0, 0)] / c[(1, 0)]).abs();
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
        let proj = pca.transform(&data);
        assert_eq!(proj.shape(), &[200, 1]);
    }

    trait SampleRange {
        fn sample_range(&mut self) -> f32;
    }
    impl SampleRange for rand::rngs::StdRng {
        fn sample_range(&mut self) -> f32 {
            use rand::Rng;
            self.random_range(-3.0..3.0)
        }
    }
}
