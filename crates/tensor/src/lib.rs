//! Dense `f32` tensors and the small amount of linear algebra needed by the
//! AIrchitect v2 reproduction.
//!
//! This crate is the lowest substrate of the workspace: it provides the
//! row-major [`Tensor`] type with the elementwise, broadcast, reduction and
//! matrix-multiplication kernels used by the neural-network crate
//! (`ai2-nn`), plus a few numerical routines used elsewhere:
//!
//! * [`linalg::cholesky`] / [`linalg::cholesky_solve`] — used by the
//!   Gaussian-process surrogate inside the Bayesian-optimization searcher,
//! * [`linalg::Pca`] — used to reproduce the landscape visualisations of
//!   Figs. 3 and 4 of the paper,
//! * [`rng`] — seeded random construction (uniform, Gaussian) so that every
//!   experiment in the repository is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use ai2_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod matmul;
mod ops;
mod tensor;

pub mod kernel;
pub mod linalg;
pub mod rng;
pub mod stats;

pub use tensor::{Tensor, TensorError};
