//! The core dense tensor type.

use std::error::Error;
use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Error type for fallible tensor constructors and conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the product of the shape.
    ShapeMismatch {
        /// Number of elements provided.
        elements: usize,
        /// Shape whose product does not equal `elements`.
        shape: Vec<usize>,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { elements, shape } => write!(
                f,
                "element count {elements} does not match shape {shape:?} (product {})",
                shape.iter().product::<usize>()
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
        }
    }
}

impl Error for TensorError {}

/// A dense, row-major, `f32` tensor of arbitrary rank.
///
/// `Tensor` is deliberately simple: contiguous storage, owned data, no
/// views. All shape-changing operations copy. The networks in this
/// repository are small (a few hundred thousand parameters), so clarity
/// wins over zero-copy cleverness.
///
/// Most binary operations panic on shape mismatch; the panic message names
/// the operation and both shapes. This mirrors the behaviour of mainstream
/// array libraries and keeps arithmetic chains readable.
///
/// # Example
///
/// ```
/// use ai2_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// ```
    /// # use ai2_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert_eq!(t.sum(), 0.0);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![value; len],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        if data.len() != shape.iter().product::<usize>() {
            return Err(TensorError::ShapeMismatch {
                elements: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: vec![data.len()],
        }
    }

    /// Creates a 2-D tensor from equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "from_rows: row {i} has length {} but row 0 has length {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Tensor {
            data,
            shape: vec![rows.len(), cols],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a matrix (axis 0 length).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows: tensor is rank {}", self.rank());
        self.shape[0]
    }

    /// Number of columns of a matrix (axis 1 length).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols: tensor is rank {}", self.rank());
        self.shape[1]
    }

    /// Borrows the underlying flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Allocated capacity of the underlying flat buffer, in elements.
    ///
    /// Used by the inference arena to pick a recycled buffer that can hold
    /// a requested shape without reallocating.
    pub fn data_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes this tensor in place to `shape`, zero-filled, reusing the
    /// existing allocations whenever their capacity suffices.
    ///
    /// This is the arena recycling primitive: after `reset_zeros` the
    /// tensor is indistinguishable from `Tensor::zeros(shape)`, but no heap
    /// traffic occurred if the buffer and shape vector were large enough.
    pub fn reset_zeros(&mut self, shape: &[usize]) {
        let len = shape.iter().product();
        self.data.clear();
        self.data.resize(len, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Returns a copy with a new shape covering the same elements.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape: cannot view {:?} as {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Borrows row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        assert!(
            r < self.shape[0],
            "row {r} out of bounds for {:?}",
            self.shape
        );
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutably borrows row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        assert!(
            r < self.shape[0],
            "row {r} out of bounds for {:?}",
            self.shape
        );
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Returns the rows `range.start..range.end` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let c = self.cols();
        assert!(
            start <= end && end <= self.shape[0],
            "slice_rows: {start}..{end} out of bounds for {:?}",
            self.shape
        );
        Tensor {
            data: self.data[start * c..end * c].to_vec(),
            shape: vec![end - start, c],
        }
    }

    /// Stacks 1-D tensors (all the same length) into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), c, "stack_rows: row {i} length {} != {c}", r.len());
            data.extend_from_slice(&r.data);
        }
        Tensor {
            data,
            shape: vec![rows.len(), c],
        }
    }

    /// Concatenates matrices with equal column counts along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let c = parts[0].cols();
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total * c);
        for p in parts {
            assert_eq!(p.cols(), c, "concat_rows: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor {
            data,
            shape: vec![total, c],
        }
    }

    /// Concatenates matrices with equal row counts along axis 1.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let r = parts[0].rows();
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(r * total);
        for i in 0..r {
            for p in parts {
                assert_eq!(p.rows(), r, "concat_cols: row mismatch");
                data.extend_from_slice(p.row(i));
            }
        }
        Tensor {
            data,
            shape: vec![r, total],
        }
    }

    /// Value at a flat index.
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// True when every element is finite (no NaN / ±∞).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert_eq!(self.rank(), 2);
        &self.data[r * self.shape[1] + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert_eq!(self.rank(), 2);
        &mut self.data[r * self.shape[1] + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.rank() == 2 && self.shape[0] <= 8 && self.shape[1] <= 8 {
            writeln!(f)?;
            for r in 0..self.shape[0] {
                write!(f, "  [")?;
                for c in 0..self.shape[1] {
                    if c > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:+.4}", self[(r, c)])?;
                }
                writeln!(f, "]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t[(1, 0)], 3.0);
    }

    #[test]
    fn from_vec_error_display() {
        let e = Tensor::from_vec(vec![1.0], &[2, 2]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("element count 1"), "{msg}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t[(0, 1)], 2.0);
        assert_eq!(t.reshape(&[4]).shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_bad_size_panics() {
        Tensor::zeros(&[2, 2]).reshape(&[3]);
    }

    #[test]
    fn rows_and_slices() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s[(0, 0)], 3.0);
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let m = Tensor::stack_rows(&[a, b]);
        assert_eq!(m.shape(), &[2, 2]);

        let left = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let right = Tensor::from_rows(&[&[10.0, 11.0], &[20.0, 21.0]]);
        let cat = Tensor::concat_cols(&[&left, &right]);
        assert_eq!(cat.shape(), &[2, 3]);
        assert_eq!(cat[(1, 2)], 21.0);

        let vcat = Tensor::concat_rows(&[&right, &right]);
        assert_eq!(vcat.shape(), &[4, 2]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn display_small_matrix() {
        let t = Tensor::eye(2);
        let s = format!("{t}");
        assert!(s.contains("Tensor[2, 2]"));
        assert!(s.contains("+1.0000"));
    }
}
