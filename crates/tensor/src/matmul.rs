//! Matrix multiplication kernels.
//!
//! A simple cache-blocked `i-k-j` kernel is fast enough for the model sizes
//! in this repository (hidden dimensions ≤ 256): training the full
//! AIrchitect v2 model is dominated by Rust-level op dispatch, not GEMM
//! throughput.

use crate::Tensor;

/// Cache block edge for the matmul kernels, chosen so three `BLOCK²` f32
/// tiles fit comfortably in a 32 KiB L1 cache.
const BLOCK: usize = 48;

impl Tensor {
    /// Matrix product `self × rhs` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `rhs` is `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul: inner dimensions differ: {:?} × {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        out
    }

    /// Matrix product `selfᵀ × rhs`.
    ///
    /// Equivalent to `self.transpose2d().matmul(rhs)` but without forming
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `rhs` is `[k, n]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul_tn: leading dimensions differ: {:?}ᵀ × {:?}",
            self.shape(),
            rhs.shape()
        );
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.as_mut_slice();
        // aᵀ[i, kk] = a[kk, i]
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let orow = &mut o[i * n..(i + 1) * n];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self × rhsᵀ`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `rhs` is `[n, k]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul_nt: trailing dimensions differ: {:?} × {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.as_mut_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                orow[j] = acc;
            }
        }
        out
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product for a rank-2 tensor and a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `v.len() == k`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(v.len(), k, "matvec: vector length {} != cols {k}", v.len());
        let mut out = Vec::with_capacity(m);
        let vv = v.as_slice();
        for i in 0..m {
            out.push(self.row(i).iter().zip(vv).map(|(a, b)| a * b).sum::<f32>());
        }
        Tensor::from_slice(&out)
    }
}

/// `out += a × b` with `a: [m,k]`, `b: [k,n]`, `out: [m,n]`, all row-major.
///
/// Exposed for the `ai2-nn` backward pass, which accumulates into existing
/// gradient buffers.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(BLOCK) {
        let imax = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let kmax = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let jmax = (j0 + BLOCK).min(n);
                for i in i0..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut out[i * n + j0..i * n + jmax];
                    for kk in k0..kmax {
                        let av = arow[kk];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + jmax];
                        for (ov, &bv) in orow.iter_mut().zip(brow) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_mismatch_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn blocked_kernel_matches_naive_on_large_sizes() {
        let mut r = rng::seeded(7);
        let a = rng::rand_uniform(&mut r, &[67, 129], -1.0, 1.0);
        let b = rng::rand_uniform(&mut r, &[129, 53], -1.0, 1.0);
        let fast = a.matmul(&b);
        // naive reference
        let mut naive = Tensor::zeros(&[67, 53]);
        for i in 0..67 {
            for j in 0..53 {
                let mut acc = 0.0;
                for kk in 0..129 {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
                naive[(i, j)] = acc;
            }
        }
        assert!(fast.max_abs_diff(&naive) < 1e-3);
    }

    #[test]
    fn transposed_variants_agree() {
        let mut r = rng::seeded(11);
        let a = rng::rand_uniform(&mut r, &[13, 7], -1.0, 1.0);
        let b = rng::rand_uniform(&mut r, &[13, 9], -1.0, 1.0);
        let tn = a.matmul_tn(&b);
        let reference = a.transpose2d().matmul(&b);
        assert!(tn.max_abs_diff(&reference) < 1e-4);

        let c = rng::rand_uniform(&mut r, &[9, 7], -1.0, 1.0);
        let nt = c.matmul_nt(&a); // [9,7] × [13,7]ᵀ = [9,13]
        let reference = c.matmul(&a.transpose2d());
        assert!(nt.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose2d().transpose2d(), a);
        assert_eq!(a.transpose2d()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Tensor::from_slice(&[5.0, 6.0]);
        let got = a.matvec(&v);
        assert_eq!(got.as_slice(), &[17.0, 39.0]);
    }
}
