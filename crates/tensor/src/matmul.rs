//! Matrix multiplication entry points.
//!
//! All four products (`matmul`, `matmul_tn`, `matmul_nt`, `matvec`) route
//! through the shared micro-kernels in [`crate::kernel`], which dispatch
//! once per process to the widest SIMD level the host supports (AVX2+FMA,
//! SSE2, or the portable scalar path — see `AI2_KERNEL`).

use crate::kernel;
use crate::Tensor;

impl Tensor {
    /// Matrix product `self × rhs` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `rhs` is `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul: inner dimensions differ: {:?} × {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm(
            kernel::active(),
            self.as_slice(),
            rhs.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// Matrix product `selfᵀ × rhs`.
    ///
    /// Equivalent to `self.transpose2d().matmul(rhs)` but without forming
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `rhs` is `[k, n]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul_tn: leading dimensions differ: {:?}ᵀ × {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm_tn(
            kernel::active(),
            self.as_slice(),
            rhs.as_slice(),
            out.as_mut_slice(),
            k,
            m,
            n,
        );
        out
    }

    /// Matrix product `self × rhsᵀ`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `rhs` is `[n, k]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (rhs.rows(), rhs.cols());
        assert_eq!(
            k,
            k2,
            "matmul_nt: trailing dimensions differ: {:?} × {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm_nt(
            kernel::active(),
            self.as_slice(),
            rhs.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// Transpose of a rank-2 tensor, copied in cache-friendly square tiles
    /// so both the source rows and destination rows stay resident while a
    /// tile is being turned.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        const TILE: usize = 32;
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[c, r]);
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for i0 in (0..r).step_by(TILE) {
            let imax = (i0 + TILE).min(r);
            for j0 in (0..c).step_by(TILE) {
                let jmax = (j0 + TILE).min(c);
                for i in i0..imax {
                    for j in j0..jmax {
                        dst[j * r + i] = src[i * c + j];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product for a rank-2 tensor and a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `v.len() == k`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(v.len(), k, "matvec: vector length {} != cols {k}", v.len());
        let mut out = Tensor::zeros(&[m]);
        kernel::matvec(
            kernel::active(),
            self.as_slice(),
            v.as_slice(),
            out.as_mut_slice(),
            m,
            k,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_mismatch_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn blocked_kernel_matches_naive_on_large_sizes() {
        let mut r = rng::seeded(7);
        let a = rng::rand_uniform(&mut r, &[67, 129], -1.0, 1.0);
        let b = rng::rand_uniform(&mut r, &[129, 53], -1.0, 1.0);
        let fast = a.matmul(&b);
        // naive reference
        let mut naive = Tensor::zeros(&[67, 53]);
        for i in 0..67 {
            for j in 0..53 {
                let mut acc = 0.0;
                for kk in 0..129 {
                    acc += a[(i, kk)] * b[(kk, j)];
                }
                naive[(i, j)] = acc;
            }
        }
        assert!(fast.max_abs_diff(&naive) < 1e-3);
    }

    #[test]
    fn transposed_variants_agree() {
        let mut r = rng::seeded(11);
        let a = rng::rand_uniform(&mut r, &[13, 7], -1.0, 1.0);
        let b = rng::rand_uniform(&mut r, &[13, 9], -1.0, 1.0);
        let tn = a.matmul_tn(&b);
        let reference = a.transpose2d().matmul(&b);
        assert!(tn.max_abs_diff(&reference) < 1e-4);

        let c = rng::rand_uniform(&mut r, &[9, 7], -1.0, 1.0);
        let nt = c.matmul_nt(&a); // [9,7] × [13,7]ᵀ = [9,13]
        let reference = c.matmul(&a.transpose2d());
        assert!(nt.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose2d().transpose2d(), a);
        assert_eq!(a.transpose2d()[(2, 1)], 6.0);
    }

    #[test]
    fn transpose_blocked_matches_elementwise_on_ragged_shape() {
        let mut r = rng::seeded(13);
        let a = rng::rand_uniform(&mut r, &[67, 45], -1.0, 1.0);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[45, 67]);
        for i in 0..67 {
            for j in 0..45 {
                assert_eq!(t[(j, i)], a[(i, j)]);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Tensor::from_slice(&[5.0, 6.0]);
        let got = a.matvec(&v);
        assert_eq!(got.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn matvec_large_matches_per_row_dot() {
        let mut r = rng::seeded(17);
        let a = rng::rand_uniform(&mut r, &[41, 77], -1.0, 1.0);
        let v = rng::rand_uniform(&mut r, &[77], -1.0, 1.0);
        let got = a.matvec(&v);
        assert_eq!(got.shape(), &[41]);
        for i in 0..41 {
            let want: f32 = a.row(i).iter().zip(v.as_slice()).map(|(x, y)| x * y).sum();
            assert!((got.as_slice()[i] - want).abs() < 1e-5);
        }
    }
}
