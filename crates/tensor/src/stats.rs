//! Feature-scaling helpers shared by dataset pipelines.
//!
//! The DSE dataset features (`M`, `N`, `K` up to 1677) span several orders
//! of magnitude, and latencies span many more; all learned models in this
//! repository train on standardised features and log-scaled targets. The
//! [`Standardizer`] records the statistics at fit time so that held-out
//! workloads are transformed identically at inference time.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Per-column mean/std scaler for 2-D feature matrices (z-score).
///
/// # Example
///
/// ```
/// use ai2_tensor::{stats::Standardizer, Tensor};
///
/// let train = Tensor::from_rows(&[&[0.0, 10.0], &[2.0, 30.0]]);
/// let s = Standardizer::fit(&train);
/// let z = s.transform(&train);
/// assert!(z.mean().abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Computes per-column statistics from `data` (`[n, d]`).
    ///
    /// Columns with a standard deviation below `1e-8` get `std = 1` so the
    /// transform is a no-op for constant features.
    ///
    /// # Panics
    ///
    /// Panics if `data` has zero rows.
    pub fn fit(data: &Tensor) -> Standardizer {
        let (n, d) = (data.rows(), data.cols());
        assert!(n > 0, "Standardizer::fit: zero rows");
        let mean = data.mean_axis0();
        let mut var = vec![0.0f32; d];
        for i in 0..n {
            for (j, (&x, &mu)) in data.row(i).iter().zip(mean.as_slice()).enumerate() {
                var[j] += (x - mu) * (x - mu);
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|v| {
                let s = (v / n as f32).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer {
            mean: mean.into_vec(),
            std,
        }
    }

    /// Applies the transform `(x - mean) / std` column-wise.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        let (n, d) = (data.rows(), data.cols());
        assert_eq!(d, self.mean.len(), "Standardizer: feature count mismatch");
        let mut out = data.clone();
        for i in 0..n {
            for (j, x) in out.row_mut(i).iter_mut().enumerate() {
                *x = (*x - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Inverts the transform for a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn inverse_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(
            row.len(),
            self.mean.len(),
            "Standardizer: feature count mismatch"
        );
        row.iter()
            .enumerate()
            .map(|(j, &x)| x * self.std[j] + self.mean[j])
            .collect()
    }

    /// Fitted per-column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Fitted per-column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

/// Min-max scaling of a slice to `[0, 1]`; constant slices map to `0.5`.
pub fn minmax_normalize(values: &[f32]) -> Vec<f32> {
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !(hi - lo).is_normal() {
        return vec![0.5; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

/// Sample mean and (population) standard deviation of a slice.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

/// Pearson correlation of two equal-length slices (0 when degenerate).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let (ma, sa) = mean_std(a);
    let (mb, sb) = mean_std(b);
    if sa < 1e-12 || sb < 1e-12 {
        return 0.0;
    }
    let cov = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f32>()
        / a.len() as f32;
    cov / (sa * sb)
}

/// Spearman rank correlation of two equal-length slices.
///
/// Used to validate the stage-1 performance predictor: the paper's encoder
/// must *order* configurations by latency, which rank correlation measures
/// directly.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(values: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0.0f32; values.len()];
    let mut i = 0;
    while i < idx.len() {
        // average ranks over ties
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f32 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let data = Tensor::from_rows(&[&[1.0, 100.0], &[3.0, 300.0], &[5.0, 500.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|i| z[(i, j)]).collect();
            let (m, sd) = mean_std(&col);
            assert!(m.abs() < 1e-5);
            assert!((sd - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn standardizer_roundtrip() {
        let data = Tensor::from_rows(&[&[1.0, -5.0], &[2.0, 7.0], &[4.0, 0.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        let back = s.inverse_row(z.row(1));
        assert!((back[0] - 2.0).abs() < 1e-5);
        assert!((back[1] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn standardizer_constant_column() {
        let data = Tensor::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(1, 0)], 0.0);
        assert!(z.all_finite());
    }

    #[test]
    fn minmax_basics() {
        assert_eq!(minmax_normalize(&[2.0, 4.0]), vec![0.0, 1.0]);
        assert_eq!(minmax_normalize(&[3.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-5);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // cubic: nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
    }
}
