//! Feature-scaling helpers shared by dataset pipelines.
//!
//! The DSE dataset features (`M`, `N`, `K` up to 1677) span several orders
//! of magnitude, and latencies span many more; all learned models in this
//! repository train on standardised features and log-scaled targets. The
//! [`Standardizer`] records the statistics at fit time so that held-out
//! workloads are transformed identically at inference time.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Per-column mean/std scaler for 2-D feature matrices (z-score).
///
/// # Example
///
/// ```
/// use ai2_tensor::{stats::Standardizer, Tensor};
///
/// let train = Tensor::from_rows(&[&[0.0, 10.0], &[2.0, 30.0]]);
/// let s = Standardizer::fit(&train);
/// let z = s.transform(&train);
/// assert!(z.mean().abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Computes per-column statistics from `data` (`[n, d]`).
    ///
    /// Columns with a standard deviation below `1e-8` get `std = 1` so the
    /// transform is a no-op for constant features.
    ///
    /// # Panics
    ///
    /// Panics if `data` has zero rows.
    pub fn fit(data: &Tensor) -> Standardizer {
        let (n, d) = (data.rows(), data.cols());
        assert!(n > 0, "Standardizer::fit: zero rows");
        let mean = data.mean_axis0();
        let mut var = vec![0.0f32; d];
        for i in 0..n {
            for (j, (&x, &mu)) in data.row(i).iter().zip(mean.as_slice()).enumerate() {
                var[j] += (x - mu) * (x - mu);
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|v| {
                let s = (v / n as f32).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer {
            mean: mean.into_vec(),
            std,
        }
    }

    /// Applies the transform `(x - mean) / std` column-wise.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        let (n, d) = (data.rows(), data.cols());
        assert_eq!(d, self.mean.len(), "Standardizer: feature count mismatch");
        let mut out = data.clone();
        for i in 0..n {
            for (j, x) in out.row_mut(i).iter_mut().enumerate() {
                *x = (*x - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Inverts the transform for a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn inverse_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(
            row.len(),
            self.mean.len(),
            "Standardizer: feature count mismatch"
        );
        row.iter()
            .enumerate()
            .map(|(j, &x)| x * self.std[j] + self.mean[j])
            .collect()
    }

    /// Fitted per-column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Fitted per-column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

/// Min-max scaling of a slice to `[0, 1]`; constant slices map to `0.5`.
pub fn minmax_normalize(values: &[f32]) -> Vec<f32> {
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !(hi - lo).is_normal() {
        return vec![0.5; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

/// Sample mean and (population) standard deviation of a slice.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

/// Linearly interpolated percentile of a sample, `q` in `[0, 100]`
/// (the numpy `linear` convention: rank `q/100 · (n-1)` interpolated
/// between its floor and ceiling order statistics). Used by the serving
/// stats endpoint for p50/p95/p99 latency. `NaN` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return percentile_sorted(values, q);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in sample"));
    percentile_sorted(&sorted, q)
}

/// [`percentile`] over an already ascending-sorted sample — callers
/// reading several percentiles off one sample (p50/p95/p99 of a latency
/// window) sort once and index, instead of re-sorting per quantile.
///
/// Returns `NaN` for an empty sample; callers that must never emit NaN
/// (JSON serializers — NaN is not legal JSON) should use
/// [`try_percentile_sorted`] instead.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    try_percentile_sorted(sorted, q).unwrap_or(f64::NAN)
}

/// [`percentile_sorted`] with the empty-sample case made explicit:
/// `None` instead of `NaN`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn try_percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile: q={q} out of range");
    if sorted.is_empty() {
        return None;
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A uniform-bin histogram over `[lo, hi]` (degenerate samples collapse
/// to a single-bin range). The last bin is closed so `hi` itself is
/// counted.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Per-bin counts, `bins` entries.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Total counted samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Bins a sample into `bins` uniform buckets spanning its min..=max.
/// Every finite value lands in exactly one bin.
///
/// # Panics
///
/// Panics if `bins` is zero or any value is non-finite.
pub fn histogram(values: &[f64], bins: usize) -> Histogram {
    assert!(bins > 0, "histogram: zero bins");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "histogram: non-finite value"
    );
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() || lo == hi {
        let mut counts = vec![0; bins];
        counts[0] = values.len();
        let base = if values.is_empty() { 0.0 } else { lo };
        return Histogram {
            lo: base,
            hi: base,
            counts,
        };
    }
    let mut counts = vec![0usize; bins];
    let scale = bins as f64 / (hi - lo);
    for &v in values {
        let idx = (((v - lo) * scale) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    Histogram { lo, hi, counts }
}

/// Pearson correlation of two equal-length slices (0 when degenerate).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let (ma, sa) = mean_std(a);
    let (mb, sb) = mean_std(b);
    if sa < 1e-12 || sb < 1e-12 {
        return 0.0;
    }
    let cov = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f32>()
        / a.len() as f32;
    cov / (sa * sb)
}

/// Spearman rank correlation of two equal-length slices.
///
/// Used to validate the stage-1 performance predictor: the paper's encoder
/// must *order* configurations by latency, which rank correlation measures
/// directly.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(values: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut out = vec![0.0f32; values.len()];
    let mut i = 0;
    while i < idx.len() {
        // average ranks over ties
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f32 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let data = Tensor::from_rows(&[&[1.0, 100.0], &[3.0, 300.0], &[5.0, 500.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|i| z[(i, j)]).collect();
            let (m, sd) = mean_std(&col);
            assert!(m.abs() < 1e-5);
            assert!((sd - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn standardizer_roundtrip() {
        let data = Tensor::from_rows(&[&[1.0, -5.0], &[2.0, 7.0], &[4.0, 0.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        let back = s.inverse_row(z.row(1));
        assert!((back[0] - 2.0).abs() < 1e-5);
        assert!((back[1] - 7.0).abs() < 1e-4);
    }

    #[test]
    fn standardizer_constant_column() {
        let data = Tensor::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]);
        let s = Standardizer::fit(&data);
        let z = s.transform(&data);
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(1, 0)], 0.0);
        assert!(z.all_finite());
    }

    #[test]
    fn minmax_basics() {
        assert_eq!(minmax_normalize(&[2.0, 4.0]), vec![0.0, 1.0]);
        assert_eq!(minmax_normalize(&[3.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn percentile_hand_computed_values() {
        // sorted: [1, 2, 3, 4]; ranks at n-1 = 3
        let v = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        // p50 → rank 1.5 → midpoint of 2 and 3
        assert_eq!(percentile(&v, 50.0), 2.5);
        // p25 → rank 0.75 → 1 + 0.75·(2-1)
        assert_eq!(percentile(&v, 25.0), 1.75);
        // five elements: p95 → rank 3.8 → 4 + 0.8·(5-4)
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((percentile(&w, 95.0) - 4.8).abs() < 1e-12);
        // singletons and empties
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(try_percentile_sorted(&[], 50.0), None);
        assert_eq!(try_percentile_sorted(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn histogram_hand_computed_counts() {
        // range [0, 10], 5 bins of width 2
        let v = [0.0, 1.9, 2.0, 5.0, 9.9, 10.0, 10.0];
        let h = histogram(&v, 5);
        assert_eq!(h.lo, 0.0);
        assert_eq!(h.hi, 10.0);
        assert_eq!(h.bin_width(), 2.0);
        // 0.0,1.9 → bin 0; 2.0 → bin 1; 5.0 → bin 2; 9.9,10,10 → bin 4
        assert_eq!(h.counts, vec![2, 1, 1, 0, 3]);
        assert_eq!(h.total(), v.len());
    }

    #[test]
    fn histogram_degenerate_samples() {
        let constant = histogram(&[3.0, 3.0, 3.0], 4);
        assert_eq!(constant.counts, vec![3, 0, 0, 0]);
        assert_eq!(constant.lo, constant.hi);
        let empty = histogram(&[], 2);
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.counts.len(), 2);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-5);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // cubic: nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
    }
}
