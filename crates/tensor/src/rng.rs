//! Seeded random tensor construction.
//!
//! Every stochastic component in this repository (initialisers, searchers,
//! dataset generators) takes an explicit seed so that experiments reproduce
//! exactly. This module centralises the RNG plumbing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// Creates the deterministic RNG used throughout the workspace.
///
/// ```
/// # use ai2_tensor::rng;
/// let mut a = rng::seeded(42);
/// let mut b = rng::seeded(42);
/// let x = rng::rand_uniform(&mut a, &[3], 0.0, 1.0);
/// let y = rng::rand_uniform(&mut b, &[3], 0.0, 1.0);
/// assert_eq!(x, y);
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn rand_uniform(rng: &mut StdRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "rand_uniform: empty range [{lo}, {hi})");
    let len = shape.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("length matches shape by construction")
}

/// Tensor with standard-normal elements (Box–Muller transform).
pub fn randn(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let len: usize = shape.iter().product();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let (z0, z1) = box_muller(rng);
        data.push(z0);
        if data.len() < len {
            data.push(z1);
        }
    }
    Tensor::from_vec(data, shape).expect("length matches shape by construction")
}

/// One pair of independent standard-normal samples.
pub fn box_muller(rng: &mut StdRng) -> (f32, f32) {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.random_range(0.0..1.0f32);
    let u2: f32 = rng.random_range(0.0..1.0f32);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Xavier/Glorot-uniform initialisation for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rand_uniform(rng, &[fan_in, fan_out], -limit, limit)
}

/// He/Kaiming-normal initialisation for a `[fan_in, fan_out]` weight.
pub fn he_normal(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    randn(rng, &[fan_in, fan_out]).scale(std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        assert_eq!(
            rand_uniform(&mut a, &[16], -2.0, 2.0),
            rand_uniform(&mut b, &[16], -2.0, 2.0)
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = seeded(1);
        let t = rand_uniform(&mut r, &[1000], -0.5, 0.5);
        assert!(t.max() < 0.5);
        assert!(t.min() >= -0.5);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut r = seeded(2);
        let t = randn(&mut r, &[20000]);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(t.all_finite());
    }

    #[test]
    fn xavier_limits() {
        let mut r = seeded(3);
        let w = xavier_uniform(&mut r, 8, 8);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(w.max() <= limit && w.min() >= -limit);
        assert_eq!(w.shape(), &[8, 8]);
    }

    #[test]
    fn he_normal_scale() {
        let mut r = seeded(4);
        let w = he_normal(&mut r, 128, 4096);
        let std = (w.map(|v| v * v).mean()).sqrt();
        let expected = (2.0f32 / 128.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.1,
            "std {std} vs {expected}"
        );
    }
}
