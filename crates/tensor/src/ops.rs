//! Elementwise, broadcast and reduction operations.

use crate::Tensor;

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = self.clone();
        for (o, &b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o = f(*o, b);
        }
        out
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient. Panics on shape mismatch.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds a 1-D row vector to every row of a matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `row.len() == self.cols()`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(
            row.len(),
            c,
            "add_row_broadcast: row length {} != cols {c}",
            row.len()
        );
        let mut out = self.clone();
        let rv = row.as_slice();
        for r in 0..out.shape()[0] {
            for (o, &b) in out.row_mut(r).iter_mut().zip(rv) {
                *o += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Sums a matrix over rows, producing a row vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_slice(&out)
    }

    /// Sums a matrix over columns, producing a vector of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis1(&self) -> Tensor {
        let r = self.rows();
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            out.push(self.row(i).iter().sum());
        }
        Tensor::from_slice(&out)
    }

    /// Mean over rows, producing a row vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero rows.
    pub fn mean_axis0(&self) -> Tensor {
        let r = self.rows();
        assert!(r > 0, "mean_axis0: zero rows");
        self.sum_axis0().scale(1.0 / r as f32)
    }

    /// Index of the largest element of each row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        assert!(c > 0, "argmax_rows: zero columns");
        (0..r)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax of a matrix (numerically stabilised).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        let (r, _c) = (self.rows(), self.cols());
        let mut out = self.clone();
        for i in 0..r {
            let row = out.row_mut(i);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        out
    }

    /// L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Normalises each row of a matrix to unit L2 norm.
    ///
    /// Rows with norm below `eps` are left unchanged to avoid division by
    /// (near-)zero.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn normalize_rows(&self, eps: f32) -> Tensor {
        let r = self.rows();
        let mut out = self.clone();
        for i in 0..r {
            let row = out.row_mut(i);
            let n = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if n > eps {
                for v in row.iter_mut() {
                    *v /= n;
                }
            }
        }
        out
    }

    /// Dot product of two 1-D tensors (or flattened tensors of equal length).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = m();
        assert_eq!(a.add(&a)[(1, 1)], 8.0);
        assert_eq!(a.sub(&a).sum(), 0.0);
        assert_eq!(a.mul(&a)[(1, 0)], 9.0);
        assert_eq!(a.div(&a)[(0, 0)], 1.0);
        assert_eq!(a.scale(2.0)[(0, 1)], 4.0);
        assert_eq!(a.add_scalar(1.0)[(0, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "zip_map")]
    fn add_shape_mismatch_panics() {
        m().add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn broadcast_row() {
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let r = m().add_row_broadcast(&b);
        assert_eq!(r[(0, 0)], 11.0);
        assert_eq!(r[(1, 1)], 24.0);
    }

    #[test]
    fn reductions() {
        let a = m();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.sum_axis0().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sum_axis1().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.mean_axis0().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn argmax_and_softmax() {
        let a = Tensor::from_rows(&[&[0.0, 1.0, 0.5], &[9.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let rowsum: f32 = s.row(i).iter().sum();
            assert!((rowsum - 1.0).abs() < 1e-6);
        }
        assert!(s[(1, 0)] > 0.9);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_rows(&[&[1000.0, 1000.0]]);
        let s = a.softmax_rows();
        assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
        assert!(s.all_finite());
    }

    #[test]
    fn norms_and_dot() {
        let v = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(&v), 25.0);
        let n = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]).normalize_rows(1e-8);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = m();
        let mut b = m();
        b[(1, 1)] = 10.0;
        assert_eq!(a.max_abs_diff(&b), 6.0);
    }
}
